// Package memsys simulates the data memory of the target machine: a flat
// sparse 64-bit byte-addressable memory plus an Itanium-2-like three-level
// cache hierarchy with non-blocking misses, finite MSHRs, and an
// occupancy-limited memory bus.
//
// The functional side (Memory) and the timing side (Hierarchy) are
// independent: the CPU reads and writes values through Memory and asks
// Hierarchy how many cycles each access costs. This mirrors the split in
// the rest of the simulator (sequential semantics, separate timing model).
package memsys

import (
	"encoding/binary"
	"fmt"
	"math"
)

const (
	pageBits = 16
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

type page [pageSize]byte

// tlbBits sizes the page-translation cache: 64 entries cover 4 MiB of
// working set, enough that pointer-chasing workloads rarely fall through
// to the page map.
const tlbBits = 6

// tlbEntry caches one page translation. idx is only meaningful while p is
// non-nil.
type tlbEntry struct {
	idx uint64
	p   *page
}

// Memory is a sparse flat byte-addressable memory. The zero value is ready
// to use; untouched bytes read as zero. Accesses may straddle page
// boundaries.
type Memory struct {
	pages map[uint64]*page

	// Direct-mapped translation cache in front of the page map: the map
	// lookup per access is the dominant cost of functional memory once
	// the working set spans many pages. Pages are never freed, so entries
	// never go stale — but after Fork a page may be *replaced* by a
	// private copy, which is why the write path runs through wtlb below
	// and repairs both caches when it copies.
	tlb [1 << tlbBits]tlbEntry

	// Copy-on-write fork support (Fork). wtlb caches translations for the
	// write path only and holds exclusively pages known to be private, so
	// the write fast path of a forked memory is the same single array
	// probe as before forking. shared marks page indices whose *page is
	// aliased by another Memory; a write to one copies the page first.
	// Both stay nil/empty until Fork is called, keeping the unforked
	// write path allocation-free and bit-identical to the pre-fork code.
	wtlb   [1 << tlbBits]tlbEntry
	shared map[uint64]struct{}

	// sealed records that every resident page is marked shared and wtlb
	// is empty — the state Fork leaves both sides in. It lets Fork skip
	// mutating an already-sealed receiver, so any number of goroutines
	// may Fork the same frozen snapshot memory concurrently.
	sealed bool
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

// pageFor resolves addr's page for reading (nil if absent). The cache-hit
// path is small enough to inline into ReadN.
func (m *Memory) pageFor(addr uint64) *page {
	idx := addr >> pageBits
	e := &m.tlb[idx&(1<<tlbBits-1)]
	if e.p != nil && e.idx == idx {
		return e.p
	}
	return m.pageSlow(idx)
}

// pageSlow consults the page map on a read miss, refilling the
// translation cache. The per-access fast path is pageFor; reads of absent
// pages return nil (callers treat them as zero).
//
//adore:coldpath
func (m *Memory) pageSlow(idx uint64) *page {
	p := m.pages[idx]
	if p == nil {
		return nil
	}
	m.tlb[idx&(1<<tlbBits-1)] = tlbEntry{idx: idx, p: p}
	return p
}

// pageForWrite resolves addr's page for writing. The fast path probes the
// write translation cache, which by construction holds only private pages,
// so a hit never needs a copy-on-write check.
func (m *Memory) pageForWrite(addr uint64) *page {
	idx := addr >> pageBits
	e := &m.wtlb[idx&(1<<tlbBits-1)]
	if e.p != nil && e.idx == idx {
		return e.p
	}
	return m.pageWriteSlow(idx)
}

// pageWriteSlow grows the page map on first touch and, after a Fork,
// copies a shared page before handing it out. It repairs both translation
// caches: the read cache may still hold the pre-copy alias, and leaving it
// would make reads observe the frozen fork-side bytes.
//
//adore:coldpath
func (m *Memory) pageWriteSlow(idx uint64) *page {
	m.sealed = false
	p := m.pages[idx]
	switch {
	case p == nil:
		p = new(page)
		if m.pages == nil {
			m.pages = make(map[uint64]*page)
		}
		m.pages[idx] = p
	case m.shared != nil:
		if _, aliased := m.shared[idx]; aliased {
			cp := new(page)
			*cp = *p
			p = cp
			m.pages[idx] = p
			delete(m.shared, idx)
		}
	}
	slot := idx & (1<<tlbBits - 1)
	m.wtlb[slot] = tlbEntry{idx: idx, p: p}
	m.tlb[slot] = tlbEntry{idx: idx, p: p}
	return p
}

// Fork returns a copy-on-write clone: both memories see the same bytes at
// the moment of the call, share all resident pages, and transparently copy
// a page the first time either side writes it. Forking is O(resident
// pages) and copies no data. A Memory produced by Fork and never written
// to ("sealed") may itself be forked by any number of goroutines
// concurrently — the idiom the fork-sweep engine uses, freezing one
// snapshot memory and forking a private memory per continuation.
//
//adore:coldpath
func (m *Memory) Fork() *Memory {
	n := &Memory{
		pages:  make(map[uint64]*page, len(m.pages)),
		shared: make(map[uint64]struct{}, len(m.pages)),
		sealed: true,
	}
	for idx, p := range m.pages {
		n.pages[idx] = p
		n.shared[idx] = struct{}{}
	}
	if !m.sealed {
		if m.shared == nil {
			m.shared = make(map[uint64]struct{}, len(m.pages))
		}
		for idx := range m.pages {
			m.shared[idx] = struct{}{}
		}
		m.wtlb = [1 << tlbBits]tlbEntry{}
		m.sealed = true
	}
	return n
}

// ReadN reads size bytes (1, 2, 4 or 8) little-endian at addr.
func (m *Memory) ReadN(addr uint64, size int) uint64 {
	off := addr & pageMask
	if off+uint64(size) <= pageSize {
		p := m.pageFor(addr)
		if p == nil {
			return 0
		}
		switch size {
		case 1:
			return uint64(p[off])
		case 2:
			return uint64(binary.LittleEndian.Uint16(p[off:]))
		case 4:
			return uint64(binary.LittleEndian.Uint32(p[off:]))
		case 8:
			return binary.LittleEndian.Uint64(p[off:])
		}
	}
	// Slow path: page-straddling access.
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m.readByte(addr+uint64(i))) << (8 * i)
	}
	return v
}

// WriteN writes size bytes (1, 2, 4 or 8) little-endian at addr.
func (m *Memory) WriteN(addr uint64, size int, v uint64) {
	off := addr & pageMask
	if off+uint64(size) <= pageSize {
		p := m.pageForWrite(addr)
		switch size {
		case 1:
			p[off] = byte(v)
			return
		case 2:
			binary.LittleEndian.PutUint16(p[off:], uint16(v))
			return
		case 4:
			binary.LittleEndian.PutUint32(p[off:], uint32(v))
			return
		case 8:
			binary.LittleEndian.PutUint64(p[off:], v)
			return
		}
	}
	for i := 0; i < size; i++ {
		m.writeByte(addr+uint64(i), byte(v>>(8*i)))
	}
}

func (m *Memory) readByte(addr uint64) byte {
	p := m.pageFor(addr)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

func (m *Memory) writeByte(addr uint64, b byte) {
	m.pageForWrite(addr)[addr&pageMask] = b
}

// Read64 reads an 8-byte value.
func (m *Memory) Read64(addr uint64) uint64 { return m.ReadN(addr, 8) }

// Write64 writes an 8-byte value.
func (m *Memory) Write64(addr uint64, v uint64) { m.WriteN(addr, 8, v) }

// ReadFloat reads an IEEE-754 double.
func (m *Memory) ReadFloat(addr uint64) float64 {
	return math.Float64frombits(m.ReadN(addr, 8))
}

// WriteFloat writes an IEEE-754 double.
func (m *Memory) WriteFloat(addr uint64, v float64) {
	m.WriteN(addr, 8, math.Float64bits(v))
}

// Footprint reports the number of resident simulated bytes (whole pages).
func (m *Memory) Footprint() uint64 {
	return uint64(len(m.pages)) * pageSize
}

func (m *Memory) String() string {
	return fmt.Sprintf("memsys.Memory{%d pages, %d bytes resident}", len(m.pages), m.Footprint())
}
