package memsys

import "fmt"

// Snapshotting for the checkpoint/fork engine (DESIGN.md §16). A snapshot
// is a deep copy of every run-varying field; configuration-derived fields
// (geometry, latencies) are not captured — Restore validates instead that
// the receiver was built from the same configuration, so a snapshot can
// only be restored into a structurally identical machine.

// CacheSnapshot captures the run-varying state of one cache level.
type CacheSnapshot struct {
	cfg        CacheConfig
	useTick    uint64
	lines      []cacheLine
	lastWay    []uint8
	victimIdx  int
	victimBase int
	victimTick uint64
	stats      CacheStats
}

// Snapshot deep-copies the cache's mutable state.
func (c *Cache) Snapshot() *CacheSnapshot {
	return &CacheSnapshot{
		cfg:        c.cfg,
		useTick:    c.useTick,
		lines:      append([]cacheLine(nil), c.lines...),
		lastWay:    append([]uint8(nil), c.lastWay...),
		victimIdx:  c.victimIdx,
		victimBase: c.victimBase,
		victimTick: c.victimTick,
		stats:      c.Stats,
	}
}

// Restore overwrites the cache's mutable state from s. It errors (and
// leaves the cache untouched) when s was taken from a cache with a
// different configuration.
func (c *Cache) Restore(s *CacheSnapshot) error {
	if c.cfg != s.cfg {
		return fmt.Errorf("memsys: cache snapshot config %+v does not match %+v", s.cfg, c.cfg)
	}
	copy(c.lines, s.lines)
	copy(c.lastWay, s.lastWay)
	c.useTick = s.useTick
	c.victimIdx = s.victimIdx
	c.victimBase = s.victimBase
	c.victimTick = s.victimTick
	c.Stats = s.stats
	return nil
}

// HierarchySnapshot captures the run-varying state of the whole memory
// system: the four cache levels, the bus clock, the MSHR ring, and the
// aggregate counters.
type HierarchySnapshot struct {
	cfg         HierarchyConfig
	l1d         *CacheSnapshot
	l1i         *CacheSnapshot
	l2          *CacheSnapshot
	l3          *CacheSnapshot
	busNextFree uint64
	inflight    []uint64
	infHead     int
	infCount    int

	droppedPrefetches uint64
	prefetchesIssued  uint64
	memAccesses       uint64
	busWaitCycles     uint64
	mshrWaitCycles    uint64
}

// Snapshot deep-copies the hierarchy's mutable state.
func (h *Hierarchy) Snapshot() *HierarchySnapshot {
	return &HierarchySnapshot{
		cfg:         h.cfg,
		l1d:         h.L1D.Snapshot(),
		l1i:         h.L1I.Snapshot(),
		l2:          h.L2.Snapshot(),
		l3:          h.L3.Snapshot(),
		busNextFree: h.busNextFree,
		inflight:    append([]uint64(nil), h.inflight...),
		infHead:     h.infHead,
		infCount:    h.infCount,

		droppedPrefetches: h.DroppedPrefetches,
		prefetchesIssued:  h.PrefetchesIssued,
		memAccesses:       h.MemAccesses,
		busWaitCycles:     h.BusWaitCycles,
		mshrWaitCycles:    h.MSHRWaitCycles,
	}
}

// Restore overwrites the hierarchy's mutable state from s. It errors when
// s was taken from a hierarchy with a different configuration; a partial
// restore cannot happen because the per-level configs are validated before
// any level is written.
func (h *Hierarchy) Restore(s *HierarchySnapshot) error {
	if h.cfg != s.cfg {
		return fmt.Errorf("memsys: hierarchy snapshot config does not match")
	}
	for _, lv := range []struct {
		c *Cache
		s *CacheSnapshot
	}{{h.L1D, s.l1d}, {h.L1I, s.l1i}, {h.L2, s.l2}, {h.L3, s.l3}} {
		if lv.c.cfg != lv.s.cfg {
			return fmt.Errorf("memsys: hierarchy snapshot level config does not match")
		}
	}
	h.L1D.Restore(s.l1d)
	h.L1I.Restore(s.l1i)
	h.L2.Restore(s.l2)
	h.L3.Restore(s.l3)
	h.busNextFree = s.busNextFree
	copy(h.inflight, s.inflight)
	h.infHead = s.infHead
	h.infCount = s.infCount
	h.DroppedPrefetches = s.droppedPrefetches
	h.PrefetchesIssued = s.prefetchesIssued
	h.MemAccesses = s.memAccesses
	h.BusWaitCycles = s.busWaitCycles
	h.MSHRWaitCycles = s.mshrWaitCycles
	return nil
}
