package memsys

import "testing"

func TestFirstDiff(t *testing.T) {
	a, b := NewMemory(), NewMemory()
	if _, _, _, diff := FirstDiff(a, b); diff {
		t.Fatal("empty memories differ")
	}

	// An explicit zero equals an untouched page.
	a.Write64(0x5000, 0)
	if _, _, _, diff := FirstDiff(a, b); diff {
		t.Fatal("explicit zero vs unmapped reported as diff")
	}

	// Identical contents on both sides, different pages resident.
	a.Write64(0x10_0000, 42)
	b.Write64(0x10_0000, 42)
	b.Write64(0x20_0000, 0)
	if _, _, _, diff := FirstDiff(a, b); diff {
		t.Fatal("identical contents differ")
	}

	// Two mismatches: the lowest address wins.
	b.WriteN(0x10_0003, 1, 9)
	a.WriteN(0x30_0000, 1, 5)
	addr, av, bv, diff := FirstDiff(a, b)
	if !diff || addr != 0x10_0003 {
		t.Fatalf("FirstDiff = %#x,%v, want 0x100003", addr, diff)
	}
	if av != 0 || bv != 9 {
		t.Errorf("bytes %#x vs %#x, want 0 vs 9", av, bv)
	}
}

func TestFirstDiffRange(t *testing.T) {
	a, b := NewMemory(), NewMemory()
	a.Write64(0x1000, 0x1122334455667788)
	b.Write64(0x1000, 0x1122334455667788)
	b.WriteN(0x1100, 1, 0xff)

	if _, _, _, diff := FirstDiffRange(a, b, 0x1000, 0x100); diff {
		t.Error("window excluding the mismatch reported a diff")
	}
	addr, av, bv, diff := FirstDiffRange(a, b, 0x1000, 0x200)
	if !diff || addr != 0x1100 || av != 0 || bv != 0xff {
		t.Errorf("FirstDiffRange = %#x %#x %#x %v", addr, av, bv, diff)
	}
}
