package memsys

import (
	"testing"
	"testing/quick"
)

func TestMemoryReadWriteRoundTrip(t *testing.T) {
	m := NewMemory()
	m.WriteN(0x1000, 8, 0x1122334455667788)
	if got := m.ReadN(0x1000, 8); got != 0x1122334455667788 {
		t.Fatalf("Read64 = %#x", got)
	}
	if got := m.ReadN(0x1000, 4); got != 0x55667788 {
		t.Fatalf("Read32 low = %#x", got)
	}
	if got := m.ReadN(0x1004, 4); got != 0x11223344 {
		t.Fatalf("Read32 high = %#x", got)
	}
	if got := m.ReadN(0x1007, 1); got != 0x11 {
		t.Fatalf("Read8 = %#x", got)
	}
}

func TestMemoryZeroDefault(t *testing.T) {
	m := NewMemory()
	if got := m.Read64(0xdeadbeef000); got != 0 {
		t.Fatalf("untouched memory = %#x, want 0", got)
	}
}

func TestMemoryPageStraddle(t *testing.T) {
	m := NewMemory()
	addr := uint64(pageSize - 3)
	m.WriteN(addr, 8, 0xa1b2c3d4e5f60718)
	if got := m.ReadN(addr, 8); got != 0xa1b2c3d4e5f60718 {
		t.Fatalf("straddling read = %#x", got)
	}
	// Byte view must agree.
	if got := m.ReadN(addr+3, 1); got != 0xe5 {
		t.Fatalf("byte 3 = %#x", got)
	}
}

func TestMemoryFloatRoundTrip(t *testing.T) {
	m := NewMemory()
	m.WriteFloat(64, 3.25)
	if got := m.ReadFloat(64); got != 3.25 {
		t.Fatalf("ReadFloat = %v", got)
	}
}

// Property: a write followed by a read of the same size and address always
// returns the written value masked to the size.
func TestMemoryWriteReadProperty(t *testing.T) {
	m := NewMemory()
	f := func(addr uint64, szSel uint8, v uint64) bool {
		size := []int{1, 2, 4, 8}[szSel%4]
		addr %= 1 << 30
		m.WriteN(addr, size, v)
		mask := ^uint64(0)
		if size < 8 {
			mask = (1 << (8 * uint(size))) - 1
		}
		return m.ReadN(addr, size) == v&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func smallConfig() HierarchyConfig {
	return HierarchyConfig{
		L1D:          CacheConfig{Name: "L1D", Size: 1 << 10, LineSize: 64, Assoc: 2, HitLat: 1},
		L1I:          CacheConfig{Name: "L1I", Size: 1 << 10, LineSize: 64, Assoc: 2, HitLat: 0},
		L2:           CacheConfig{Name: "L2", Size: 8 << 10, LineSize: 128, Assoc: 4, HitLat: 6},
		L3:           CacheConfig{Name: "L3", Size: 64 << 10, LineSize: 128, Assoc: 4, HitLat: 14},
		MemLatency:   160,
		BusOccupancy: 16,
		MSHRs:        4,
	}
}

func TestCacheGeometryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad line size accepted")
		}
	}()
	NewCache(CacheConfig{Name: "x", Size: 1024, LineSize: 48, Assoc: 2})
}

func TestColdMissThenHit(t *testing.T) {
	h := NewHierarchy(smallConfig())
	r := h.Access(0, 0x4000, KindLoad)
	if r.Level != LevelMem {
		t.Fatalf("cold access level = %v", r.Level)
	}
	if r.Latency < 160 {
		t.Fatalf("cold latency = %d, want >= 160", r.Latency)
	}
	// After the fill completes, it is an L1 hit.
	later := r.Latency + 10
	r2 := h.Access(later, 0x4000, KindLoad)
	if r2.Level != LevelL1 || r2.Latency != 1 {
		t.Fatalf("post-fill access = %+v", r2)
	}
}

func TestInFlightFillWaits(t *testing.T) {
	h := NewHierarchy(smallConfig())
	r := h.Access(0, 0x4000, KindLoad)
	// A second access to the same line before the fill completes waits
	// only for the remainder (miss coalescing), not a full memory trip.
	r2 := h.Access(50, 0x4000, KindLoad)
	if r2.Level != LevelL1 {
		t.Fatalf("coalesced access level = %v", r2.Level)
	}
	want := r.Latency - 50
	if r2.Latency != want {
		t.Fatalf("coalesced latency = %d, want %d", r2.Latency, want)
	}
}

func TestFPLoadBypassesL1(t *testing.T) {
	h := NewHierarchy(smallConfig())
	h.Access(0, 0x8000, KindLoad) // fills all levels
	r := h.Access(1000, 0x8000, KindLoadFP)
	if r.Level != LevelL2 {
		t.Fatalf("FP load level = %v, want L2", r.Level)
	}
	if r.Latency != 6 {
		t.Fatalf("FP L2 hit latency = %d, want 6", r.Latency)
	}
}

func TestPrefetchHidesLatency(t *testing.T) {
	h := NewHierarchy(smallConfig())
	pf := h.Access(0, 0xc000, KindPrefetch)
	if pf.Latency != 0 || pf.Dropped {
		t.Fatalf("prefetch result = %+v", pf)
	}
	// Demand access long after the prefetch: full hit.
	r := h.Access(1000, 0xc000, KindLoad)
	if r.Level != LevelL1 || r.Latency != 1 {
		t.Fatalf("post-prefetch access = %+v", r)
	}
	// Late prefetch: demand arrives before fill completes, waits partially.
	h.Access(2000, 0x10000, KindPrefetch)
	r2 := h.Access(2100, 0x10000, KindLoad)
	if r2.Latency == 0 || r2.Latency >= 160 {
		t.Fatalf("late-prefetch latency = %d, want partial wait", r2.Latency)
	}
	if h.L1D.Stats.LatePfHits == 0 {
		t.Fatal("late prefetch hit not counted")
	}
}

func TestMSHRFullDropsPrefetch(t *testing.T) {
	h := NewHierarchy(smallConfig()) // 4 MSHRs
	for i := 0; i < 4; i++ {
		h.Access(0, uint64(0x20000+i*4096), KindPrefetch)
	}
	r := h.Access(0, 0x40000, KindPrefetch)
	if !r.Dropped {
		t.Fatal("5th concurrent prefetch not dropped")
	}
	if h.DroppedPrefetches != 1 {
		t.Fatalf("DroppedPrefetches = %d", h.DroppedPrefetches)
	}
	// A demand miss instead waits for an MSHR.
	r2 := h.Access(0, 0x50000, KindLoad)
	if r2.Latency <= 160 {
		t.Fatalf("demand miss under full MSHRs latency = %d, want > mem latency", r2.Latency)
	}
	if h.MSHRWaitCycles == 0 {
		t.Fatal("MSHR wait not accounted")
	}
}

func TestBusOccupancySerializesMisses(t *testing.T) {
	h := NewHierarchy(smallConfig())
	r1 := h.Access(0, 0x100000, KindLoad)
	r2 := h.Access(0, 0x200000, KindLoad)
	if r2.Latency != r1.Latency+16 {
		t.Fatalf("second miss latency = %d, want %d (bus occupancy)", r2.Latency, r1.Latency+16)
	}
	if h.BusWaitCycles == 0 {
		t.Fatal("bus wait not accounted")
	}
}

func TestLRUEviction(t *testing.T) {
	cfg := CacheConfig{Name: "t", Size: 256, LineSize: 64, Assoc: 2, HitLat: 1} // 2 sets
	c := NewCache(cfg)
	// Three lines mapping to set 0: addresses 0, 128, 256.
	c.Fill(0, 0, false, false)
	c.Fill(128, 0, false, false)
	c.Access(10, 0, false) // touch 0, making 128 LRU
	c.Fill(256, 0, false, false)
	if !c.Probe(0) {
		t.Fatal("MRU line evicted")
	}
	if c.Probe(128) {
		t.Fatal("LRU line survived")
	}
	if !c.Probe(256) {
		t.Fatal("new line not resident")
	}
}

func TestDirtyEvictionCountsWriteback(t *testing.T) {
	cfg := CacheConfig{Name: "t", Size: 128, LineSize: 64, Assoc: 1, HitLat: 1} // 2 sets, direct-mapped
	c := NewCache(cfg)
	c.Fill(0, 0, false, false)
	c.Access(1, 0, true) // dirty it
	if evicted := c.Fill(128, 0, false, false); !evicted {
		t.Fatal("dirty eviction not reported")
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats.Writebacks)
	}
}

func TestStatsMissRatio(t *testing.T) {
	var s CacheStats
	if s.MissRatio() != 0 {
		t.Fatal("idle miss ratio non-zero")
	}
	s.Accesses, s.Misses = 10, 3
	if got := s.MissRatio(); got != 0.3 {
		t.Fatalf("MissRatio = %v", got)
	}
}

func TestInstFetchPath(t *testing.T) {
	h := NewHierarchy(smallConfig())
	r := h.Access(0, 0x7000, KindInst)
	if r.Level != LevelMem {
		t.Fatalf("cold inst fetch level = %v", r.Level)
	}
	r2 := h.Access(r.Latency+1, 0x7000, KindInst)
	if r2.Level != LevelL1 || r2.Latency != 0 {
		t.Fatalf("warm inst fetch = %+v", r2)
	}
	// Instruction fills do not pollute L1D.
	if h.L1D.Probe(0x7000) {
		t.Fatal("inst fetch filled L1D")
	}
}

func TestHierarchyReset(t *testing.T) {
	h := NewHierarchy(smallConfig())
	h.Access(0, 0x9000, KindLoad)
	h.Reset()
	if h.L1D.Probe(0x9000) || h.MemAccesses != 0 || h.L1D.Stats.Accesses != 0 {
		t.Fatal("reset incomplete")
	}
}

// Property: latency is monotone in hierarchy depth — an access that hits
// closer to the core is never slower than one that goes deeper, measured
// on fresh hierarchies with an idle bus.
func TestLevelLatencyOrdering(t *testing.T) {
	h := NewHierarchy(smallConfig())
	memLat := h.Access(0, 0x1000, KindLoad).Latency
	h2 := NewHierarchy(smallConfig())
	h2.Access(0, 0x1000, KindLoad)
	l1Lat := h2.Access(100000, 0x1000, KindLoad).Latency
	fp := h2.Access(200000, 0x1000, KindLoadFP).Latency
	if !(l1Lat < fp && fp < memLat) {
		t.Fatalf("latency ordering violated: L1=%d L2=%d MEM=%d", l1Lat, fp, memLat)
	}
}

func TestPrefetchUsefulnessCounters(t *testing.T) {
	h := NewHierarchy(smallConfig())

	// Useful: demand touch long after the fill completed.
	h.Access(0, 0xc000, KindPrefetch)
	h.Access(1000, 0xc000, KindLoad)
	if h.L1D.Stats.PfUseful != 1 {
		t.Fatalf("PfUseful = %d, want 1", h.L1D.Stats.PfUseful)
	}

	// Late: demand touch while the fill is still in flight.
	h.Access(2000, 0x10000, KindPrefetch)
	h.Access(2100, 0x10000, KindLoad)
	if h.L1D.Stats.PfLate != 1 {
		t.Fatalf("PfLate = %d, want 1", h.L1D.Stats.PfLate)
	}

	// The first demand touch consumes the pf bit: re-touching the same
	// line is an ordinary hit, not another useful prefetch.
	h.Access(3000, 0xc000, KindLoad)
	if h.L1D.Stats.PfUseful != 1 {
		t.Fatalf("second touch recounted: PfUseful = %d", h.L1D.Stats.PfUseful)
	}

	// A prefetch probing its own line must not consume the bit.
	h.Access(4000, 0x20000, KindPrefetch)
	h.Access(5000, 0x20000, KindPrefetch)
	h.Access(6000, 0x20000, KindLoad)
	if h.L1D.Stats.PfUseful != 2 {
		t.Fatalf("prefetch probe consumed pf bit: PfUseful = %d, want 2", h.L1D.Stats.PfUseful)
	}

	// Unused: prefetched line evicted (1 KB / 64 B / 2-way L1D -> 8 sets,
	// 512-byte set stride) before any demand touch.
	h.Access(7000, 0x30000, KindPrefetch)
	h.Access(8000, 0x30200, KindLoad)
	h.Access(9000, 0x30400, KindLoad)
	if h.L1D.Stats.PfUnused != 1 {
		t.Fatalf("PfUnused = %d, want 1", h.L1D.Stats.PfUnused)
	}

	agg := h.Prefetch()
	if agg.Issued != 5 {
		t.Fatalf("Issued = %d, want 5", agg.Issued)
	}
	if agg.Useful < 2 || agg.Late < 1 || agg.EvictedUnused < 1 {
		t.Fatalf("aggregate = %+v", agg)
	}

	// Deltas for per-window sampling.
	before := agg
	h.Access(10000, 0x40000, KindPrefetch)
	d := h.Prefetch().Sub(before)
	if d.Issued != 1 || d.Useful != 0 {
		t.Fatalf("delta = %+v", d)
	}

	h.Reset()
	if got := h.Prefetch(); got != (PrefetchStats{}) {
		t.Fatalf("Reset left counters: %+v", got)
	}
}

func TestDemandFillNotCountedUnused(t *testing.T) {
	h := NewHierarchy(smallConfig())
	// Demand-filled lines evicted untouched-again are not "unused
	// prefetches": the pf bit is only set by lfetch fills.
	h.Access(0, 0x50000, KindLoad)
	h.Access(1000, 0x50200, KindLoad)
	h.Access(2000, 0x50400, KindLoad)
	if h.L1D.Stats.PfUnused != 0 {
		t.Fatalf("PfUnused = %d, want 0", h.L1D.Stats.PfUnused)
	}
}
