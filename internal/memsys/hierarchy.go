package memsys

// Level identifies which level of the hierarchy satisfied an access.
type Level uint8

const (
	LevelL1 Level = iota
	LevelL2
	LevelL3
	LevelMem
)

func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	case LevelMem:
		return "MEM"
	}
	return "?"
}

// AccessKind distinguishes the hierarchy's clients. Floating-point loads
// bypass L1D on Itanium 2 and do so here as well; that asymmetry is why the
// paper aligns small integer prefetch strides to the L1D line size "not for
// FP operations since they bypass L1 cache".
type AccessKind uint8

const (
	KindLoad     AccessKind = iota // integer load
	KindLoadFP                     // floating-point load (bypasses L1D)
	KindStore                      // integer or FP store
	KindPrefetch                   // lfetch: non-blocking, non-faulting
	KindInst                       // instruction fetch (L1I then L2)
)

// Result reports the outcome of one access.
type Result struct {
	Latency uint64 // cycles until the value is usable
	Level   Level  // level that supplied the line
	Dropped bool   // prefetch discarded (MSHRs full)
}

// HierarchyConfig sizes the full memory system. The defaults model the
// paper's 900 MHz Itanium 2 zx6000 (DESIGN.md §1).
type HierarchyConfig struct {
	L1D CacheConfig
	L1I CacheConfig
	L2  CacheConfig
	L3  CacheConfig

	MemLatency   int // cycles from L3 miss to data return, before queueing
	BusOccupancy int // cycles the memory bus is held per line transfer
	MSHRs        int // maximum in-flight misses to memory
}

// DefaultConfig returns the Itanium-2-like geometry used throughout the
// reproduction.
func DefaultConfig() HierarchyConfig {
	return HierarchyConfig{
		L1D:          CacheConfig{Name: "L1D", Size: 16 << 10, LineSize: 64, Assoc: 4, HitLat: 1},
		L1I:          CacheConfig{Name: "L1I", Size: 16 << 10, LineSize: 64, Assoc: 4, HitLat: 0},
		L2:           CacheConfig{Name: "L2", Size: 256 << 10, LineSize: 128, Assoc: 8, HitLat: 6},
		L3:           CacheConfig{Name: "L3", Size: 1536 << 10, LineSize: 128, Assoc: 12, HitLat: 14},
		MemLatency:   160,
		BusOccupancy: 16,
		MSHRs:        16,
	}
}

// Hierarchy ties the cache levels to the bus and MSHR models.
type Hierarchy struct {
	cfg HierarchyConfig
	L1D *Cache
	L1I *Cache
	L2  *Cache
	L3  *Cache

	// Hit latencies hoisted out of cfg: the hot access paths read these
	// once per access, and a flat uint64 field load beats chasing into the
	// nested config structs.
	l1dLat uint64
	l1iLat uint64
	l2Lat  uint64
	l3Lat  uint64

	busNextFree uint64
	// MSHR model: a fixed-capacity ring of per-miss completion times,
	// ordered oldest-first. memFetch start times never decrease (the
	// clock and busNextFree are both monotone), so completions are
	// pushed in non-decreasing order and the ring is a sorted queue:
	// pruning pops expired entries from the head (amortized O(1)) and
	// the earliest completion — what a blocked demand miss waits for —
	// is the head, replacing the full-slice scans this bookkeeping
	// started with.
	inflight []uint64 // ring storage, len = max(1, cfg.MSHRs)
	infHead  int
	infCount int

	// Aggregate statistics beyond the per-cache counters.
	DroppedPrefetches uint64
	PrefetchesIssued  uint64 // lfetch accesses presented to the hierarchy
	MemAccesses       uint64
	BusWaitCycles     uint64
	MSHRWaitCycles    uint64
}

// NewHierarchy builds the hierarchy from cfg.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	slots := cfg.MSHRs
	if slots < 1 {
		slots = 1
	}
	return &Hierarchy{
		cfg:      cfg,
		L1D:      NewCache(cfg.L1D),
		L1I:      NewCache(cfg.L1I),
		L2:       NewCache(cfg.L2),
		L3:       NewCache(cfg.L3),
		l1dLat:   uint64(cfg.L1D.HitLat),
		l1iLat:   uint64(cfg.L1I.HitLat),
		l2Lat:    uint64(cfg.L2.HitLat),
		l3Lat:    uint64(cfg.L3.HitLat),
		inflight: make([]uint64, slots),
	}
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// pruneInflight drops completed MSHR entries: entries are ordered by
// completion time, so popping from the head until it is in the future is
// exact.
func (h *Hierarchy) pruneInflight(now uint64) {
	for h.infCount > 0 && h.inflight[h.infHead] <= now {
		h.infHead++
		if h.infHead == len(h.inflight) {
			h.infHead = 0
		}
		h.infCount--
	}
}

// addInflight records a new in-flight miss. Completion times are monotone
// in practice (see the ring comment); the backward walk keeps the ring
// sorted even if a future change breaks that, at a cost bounded by the
// MSHR count.
func (h *Hierarchy) addInflight(readyAt uint64) {
	n := len(h.inflight)
	j := h.infCount
	for j > 0 {
		p := h.infHead + j - 1
		if p >= n {
			p -= n
		}
		if h.inflight[p] <= readyAt {
			break
		}
		q := p + 1
		if q >= n {
			q -= n
		}
		h.inflight[q] = h.inflight[p]
		j--
	}
	q := h.infHead + j
	if q >= n {
		q -= n
	}
	h.inflight[q] = readyAt
	h.infCount++
}

// reserveMSHR acquires an in-flight slot at time now. When the file is
// full: demand accesses wait for the earliest completion (the returned
// delay), prefetches report failure and are dropped by the caller.
func (h *Hierarchy) reserveMSHR(now uint64, isPrefetch bool) (delay uint64, ok bool) {
	h.pruneInflight(now)
	if h.infCount < h.cfg.MSHRs {
		return 0, true
	}
	if isPrefetch {
		return 0, false
	}
	earliest := h.inflight[h.infHead]
	delay = earliest - now
	h.MSHRWaitCycles += delay
	h.pruneInflight(now + delay)
	return delay, true
}

// memFetch models an access that has missed L3: it queues on the bus,
// occupies it for one line transfer, and completes MemLatency cycles after
// the transfer starts.
func (h *Hierarchy) memFetch(now uint64) (readyAt uint64) {
	h.MemAccesses++
	start := max64(now, h.busNextFree)
	h.BusWaitCycles += start - now
	h.busNextFree = start + uint64(h.cfg.BusOccupancy)
	return start + uint64(h.cfg.MemLatency)
}

// Access runs one data access through the hierarchy at time now and
// returns its timing. The functional value transfer happens elsewhere
// (Memory); Access only moves lines and accounts cycles.
//
// It is a dispatcher over the per-kind entry points below. The CPU's hot
// paths call those directly — with the kind fixed at the call site the
// dispatch is dead weight on every simulated access — but kind-driven
// callers (tests, tools replaying traces) keep this single front door.
func (h *Hierarchy) Access(now uint64, addr uint64, kind AccessKind) Result {
	switch kind {
	case KindLoad:
		return h.AccessLoad(now, addr)
	case KindStore:
		return h.AccessStore(now, addr)
	case KindInst:
		return h.AccessInst(now, addr)
	case KindPrefetch:
		return h.AccessPrefetch(now, addr)
	}
	return h.accessDataMiss(now, addr, kind) // KindLoadFP: straight to L2
}

// AccessLoad resolves an integer load: L1D first, then the shared miss
// path. The L1D hit — the most frequent data outcome — returns straight
// from the first probe.
func (h *Hierarchy) AccessLoad(now uint64, addr uint64) Result {
	if hit, ready := h.L1D.Access(now, addr, false); hit {
		lat := h.l1dLat
		if d := saturatingSub(ready, now); d > lat {
			lat = d
		}
		return Result{Latency: lat, Level: LevelL1}
	}
	return h.accessDataMiss(now, addr, KindLoad)
}

// AccessStore resolves an integer or FP store. Write-allocate: a miss
// pulls the line in through the same path as a load, marked dirty.
func (h *Hierarchy) AccessStore(now uint64, addr uint64) Result {
	if hit, ready := h.L1D.Access(now, addr, true); hit {
		lat := h.l1dLat
		if d := saturatingSub(ready, now); d > lat {
			lat = d
		}
		return Result{Latency: lat, Level: LevelL1}
	}
	return h.accessDataMiss(now, addr, KindStore)
}

// accessDataMiss resolves a demand data access past L1D: the L2/L3/memory
// portion of Access, shared by L1D misses and L1D-bypassing FP loads.
func (h *Hierarchy) accessDataMiss(now uint64, addr uint64, kind AccessKind) Result {
	isWrite := kind == KindStore
	if hit, ready := h.L2.Access(now, addr, isWrite); hit {
		lat := max64(h.l2Lat, saturatingSub(ready, now))
		if kind != KindLoadFP {
			h.L1D.Fill(addr, now+lat, isWrite, false)
		}
		return Result{Latency: lat, Level: LevelL2}
	}
	if hit, ready := h.L3.Access(now, addr, isWrite); hit {
		lat := max64(h.l3Lat, saturatingSub(ready, now))
		h.L2.Fill(addr, now+lat, false, false)
		if kind != KindLoadFP {
			h.L1D.Fill(addr, now+lat, isWrite, false)
		}
		return Result{Latency: lat, Level: LevelL3}
	}

	// Full miss: MSHR + bus + memory.
	delay, _ := h.reserveMSHR(now, false)
	ready := h.memFetch(now + delay)
	h.addInflight(ready)
	lat := ready - now
	if evicted := h.L3.Fill(addr, ready, false, false); evicted {
		h.busNextFree += uint64(h.cfg.BusOccupancy)
	}
	h.L2.Fill(addr, ready, false, false)
	if kind != KindLoadFP {
		h.L1D.Fill(addr, ready, isWrite, false)
	}
	return Result{Latency: lat, Level: LevelMem}
}

// AccessPrefetch implements lfetch: it never stalls the issuing thread
// (Latency is always 0) and is dropped when the MSHR file is full, like
// hardware. The line is installed at all levels with its fill-completion
// time so that later demand accesses wait only for the remaining portion.
func (h *Hierarchy) AccessPrefetch(now uint64, addr uint64) Result {
	h.PrefetchesIssued++
	if hit, _ := h.L1D.accessPf(now, addr); hit {
		return Result{Latency: 0, Level: LevelL1}
	}
	if hit, ready := h.L2.accessPf(now, addr); hit {
		h.L1D.Fill(addr, max64(ready, now+h.l2Lat), false, true)
		return Result{Latency: 0, Level: LevelL2}
	}
	if hit, ready := h.L3.accessPf(now, addr); hit {
		at := max64(ready, now+h.l3Lat)
		h.L2.Fill(addr, at, false, true)
		h.L1D.Fill(addr, at, false, true)
		return Result{Latency: 0, Level: LevelL3}
	}
	_, ok := h.reserveMSHR(now, true)
	if !ok {
		h.DroppedPrefetches++
		return Result{Latency: 0, Level: LevelMem, Dropped: true}
	}
	ready := h.memFetch(now)
	h.addInflight(ready)
	if evicted := h.L3.Fill(addr, ready, false, true); evicted {
		h.busNextFree += uint64(h.cfg.BusOccupancy)
	}
	h.L2.Fill(addr, ready, false, true)
	h.L1D.Fill(addr, ready, false, true)
	return Result{Latency: 0, Level: LevelMem}
}

// AccessInst fetches an instruction line through L1I, then L2/L3/memory.
// Returned latency is the front-end bubble charged to the fetch. The CPU
// calls this once per I-line transition — after the data side, the
// highest-frequency entry into the hierarchy.
func (h *Hierarchy) AccessInst(now uint64, addr uint64) Result {
	if hit, ready := h.L1I.Access(now, addr, false); hit {
		return Result{Latency: max64(h.l1iLat, saturatingSub(ready, now)), Level: LevelL1}
	}
	if hit, ready := h.L2.Access(now, addr, false); hit {
		lat := max64(h.l2Lat, saturatingSub(ready, now))
		h.L1I.Fill(addr, now+lat, false, false)
		return Result{Latency: lat, Level: LevelL2}
	}
	if hit, ready := h.L3.Access(now, addr, false); hit {
		lat := max64(h.l3Lat, saturatingSub(ready, now))
		h.L2.Fill(addr, now+lat, false, false)
		h.L1I.Fill(addr, now+lat, false, false)
		return Result{Latency: lat, Level: LevelL3}
	}
	delay, _ := h.reserveMSHR(now, false)
	ready := h.memFetch(now + delay)
	h.addInflight(ready)
	// A dirty L3 victim occupies the bus for its writeback, exactly as on
	// the demand-data (Access) and prefetch (accessPrefetch) full-miss
	// paths; I-side misses used to skip this charge.
	if evicted := h.L3.Fill(addr, ready, false, false); evicted {
		h.busNextFree += uint64(h.cfg.BusOccupancy)
	}
	h.L2.Fill(addr, ready, false, false)
	h.L1I.Fill(addr, ready, false, false)
	return Result{Latency: ready - now, Level: LevelMem}
}

// PrefetchStats is the aggregate usefulness view the controller samples
// once per profile window for the observability counter track.
type PrefetchStats struct {
	Issued        uint64 // lfetches presented to the hierarchy
	Useful        uint64 // first demand touch found the fill complete
	Late          uint64 // first demand touch waited on an in-flight fill
	EvictedUnused uint64 // prefetched lines evicted before any demand touch
}

// Prefetch returns the usefulness counters aggregated over L1D and L2 —
// the levels lfetch installs into for integer and FP streams respectively.
// A line can be counted at both levels (it exists in both), so the split
// is indicative, not an exact partition of Issued.
func (h *Hierarchy) Prefetch() PrefetchStats {
	return PrefetchStats{
		Issued:        h.PrefetchesIssued,
		Useful:        h.L1D.Stats.PfUseful + h.L2.Stats.PfUseful,
		Late:          h.L1D.Stats.PfLate + h.L2.Stats.PfLate,
		EvictedUnused: h.L1D.Stats.PfUnused + h.L2.Stats.PfUnused,
	}
}

// Sub returns s - prev per counter (per-window deltas).
func (s PrefetchStats) Sub(prev PrefetchStats) PrefetchStats {
	return PrefetchStats{
		Issued:        s.Issued - prev.Issued,
		Useful:        s.Useful - prev.Useful,
		Late:          s.Late - prev.Late,
		EvictedUnused: s.EvictedUnused - prev.EvictedUnused,
	}
}

// Reset clears all cache contents and statistics.
func (h *Hierarchy) Reset() {
	h.L1D.Reset()
	h.L1I.Reset()
	h.L2.Reset()
	h.L3.Reset()
	h.busNextFree = 0
	h.infHead = 0
	h.infCount = 0
	h.DroppedPrefetches = 0
	h.PrefetchesIssued = 0
	h.MemAccesses = 0
	h.BusWaitCycles = 0
	h.MSHRWaitCycles = 0
}

func saturatingSub(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return 0
}
