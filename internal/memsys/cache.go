package memsys

import "fmt"

// CacheConfig sizes one cache level.
type CacheConfig struct {
	Name     string
	Size     int // total bytes; must be Assoc * LineSize * power-of-two sets
	LineSize int // bytes per line; power of two
	Assoc    int // ways per set
	HitLat   int // cycles to return a hit from this level
}

// Per-line flag bits, stored in the low byte of the packed meta word.
// pf marks a line installed by lfetch that no demand access has touched
// yet — the bit behind the prefetch-usefulness counters.
const (
	flagValid uint64 = 1 << iota
	flagDirty
	flagPf
	flagMask uint64 = (1 << metaUseShift) - 1
)

// metaUseShift splits the meta word: bits [8,64) hold the LRU timestamp,
// bits [0,8) the flags. useTick would need 2^56 touches to overflow —
// thousands of years of simulation at current speeds.
const metaUseShift = 8

// CacheStats counts accesses per level.
type CacheStats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Prefetches uint64 // fills initiated by lfetch
	LatePfHits uint64 // demand hits on a still-in-flight prefetch fill
	Writebacks uint64
	// Prefetch usefulness: where each prefetched line's first demand touch
	// found it — fill already complete (useful), fill still in flight
	// (late), or never touched before eviction (unused). Useful + Late +
	// Unused converges on Prefetches as lines age out.
	PfUseful uint64
	PfLate   uint64
	PfUnused uint64
}

// cacheLine is the bookkeeping state of one way. The three words a lookup
// needs sit in one 24-byte struct, so the common access touches one or
// two host cache lines; splitting them across parallel arrays (tried
// first) cost three to four potentially cold lines per simulated access,
// which dominated the profile once the simulated working set outgrew the
// host caches.
//
//   - tag: line tag (addr >> lineBits); stale while the way is invalid,
//     so every tag match must be confirmed against the meta valid bit.
//   - meta: useTick<<metaUseShift | flags. Invalid ways keep meta 0, the
//     smallest possible value, so the LRU victim compare needs no
//     separate valid branch beyond its early-out.
//   - ready: when an in-flight fill completes. A "hit" on a line still
//     being filled waits for it, which is how prefetch-too-late and miss
//     coalescing behave on real hardware.
type cacheLine struct {
	tag   uint64
	meta  uint64
	ready uint64
}

// Cache is one set-associative, write-back, write-allocate cache level.
// Lines are indexed set*assoc+way.
type Cache struct {
	cfg      CacheConfig
	numSets  int
	assoc    int // == cfg.Assoc, hoisted for the hot scans
	lineBits uint
	setMask  uint64
	useTick  uint64
	lines    []cacheLine
	// Per-set last-hit way memo: accesses that repeat a set's most recent
	// line (struct-field runs on the data side, the alternating pair of
	// I-lines of a straddling loop on the instruction side) skip the way
	// scan. Purely a prediction — it is validated against the indexed
	// tag+valid state before use, so Fill/Invalidate need not clear it,
	// and it never changes hit/miss outcomes, LRU updates or statistics.
	lastWay []uint8
	// Victim hint: every hierarchy fill is preceded by the missing access
	// that triggered it, and that access's way scan already saw every
	// way's meta word. The scan stashes the victim Fill would choose;
	// Fill consumes it only when nothing touched this cache in between
	// (the tick matches) and the set matches, so out-of-band fills — tests
	// driving Fill directly — still take the full scan and pick the same
	// way they always did.
	victimIdx  int
	victimBase int
	victimTick uint64
	Stats      CacheStats
}

// NewCache builds a cache from cfg. It panics on non-power-of-two or
// inconsistent geometry: configurations are static, so this is a
// programming error, not a runtime condition.
func NewCache(cfg CacheConfig) *Cache {
	if cfg.LineSize <= 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic(fmt.Sprintf("memsys: %s line size %d not a power of two", cfg.Name, cfg.LineSize))
	}
	if cfg.Assoc <= 0 || cfg.Size%(cfg.LineSize*cfg.Assoc) != 0 {
		panic(fmt.Sprintf("memsys: %s geometry %d/%d/%d inconsistent", cfg.Name, cfg.Size, cfg.LineSize, cfg.Assoc))
	}
	numSets := cfg.Size / (cfg.LineSize * cfg.Assoc)
	if numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("memsys: %s set count %d not a power of two", cfg.Name, numSets))
	}
	lineBits := uint(0)
	for 1<<lineBits < cfg.LineSize {
		lineBits++
	}
	return &Cache{
		cfg:        cfg,
		numSets:    numSets,
		assoc:      cfg.Assoc,
		lineBits:   lineBits,
		setMask:    uint64(numSets - 1),
		lines:      make([]cacheLine, numSets*cfg.Assoc),
		lastWay:    make([]uint8, numSets),
		victimTick: ^uint64(0), // no hint until the first missing access
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() int { return c.cfg.LineSize }

// lookup finds addr's line, returning its slot index or -1. An invalid
// way's stale tag may match (a freshly reset cache has tag 0 everywhere),
// so a match counts only with the valid bit set — and the scan continues
// past it rather than breaking, since the real line may sit in a later
// way. Cold-path variant (Probe, Invalidate); the hot path is the fused
// scan in access.
func (c *Cache) lookup(addr uint64) int {
	tag := addr >> c.lineBits
	base := int(tag&c.setMask) * c.assoc
	set := c.lines[base : base+c.assoc]
	for w := range set {
		if set[w].tag == tag && set[w].meta&flagValid != 0 {
			return base + w
		}
	}
	return -1
}

// Probe reports whether addr is resident (valid, fill possibly still in
// flight) without touching LRU state or statistics.
func (c *Cache) Probe(addr uint64) bool { return c.lookup(addr) != -1 }

// Access looks up addr at time now. On a hit it returns (true, readyAt):
// readyAt <= now means the data is available immediately; a later readyAt
// means the line is still being filled (the caller waits). On a miss it
// returns (false, 0); the caller must Fill the line after resolving the
// next level. Stores mark the line dirty.
func (c *Cache) Access(now uint64, addr uint64, isWrite bool) (hit bool, readyAt uint64) {
	return c.access(now, addr, isWrite, true)
}

// accessPf is the lookup lfetch uses: identical timing, but it does not
// consume a line's pf bit — only demand accesses decide usefulness.
func (c *Cache) accessPf(now uint64, addr uint64) (hit bool, readyAt uint64) {
	return c.access(now, addr, false, false)
}

func (c *Cache) access(now uint64, addr uint64, isWrite, demand bool) (hit bool, readyAt uint64) {
	c.Stats.Accesses++
	c.useTick++
	tag := addr >> c.lineBits
	set := int(tag & c.setMask)
	base := set * c.assoc
	// Memo probe first, then the way scan, fused here (rather than calling
	// lookup) to keep the L1 hit — the most frequent operation the whole
	// simulator performs — at one call from the hierarchy.
	l := &c.lines[base+int(c.lastWay[set])]
	if !(l.tag == tag && l.meta&flagValid != 0) {
		l = nil
		ways := c.lines[base : base+c.assoc]
		// The scan doubles as Fill's victim selection (see the victim
		// hint fields): first invalid way, else least-recently-used.
		// Ways past the first invalid one are skipped exactly as Fill's
		// scan breaks there.
		victim, bestUse := 0, ^uint64(0)
		invalidFound := false
		for w := range ways {
			m := ways[w].meta
			if ways[w].tag == tag && m&flagValid != 0 {
				c.lastWay[set] = uint8(w)
				l = &ways[w]
				break
			}
			if !invalidFound {
				if m&flagValid == 0 {
					invalidFound = true
					victim = w
				} else if m>>metaUseShift < bestUse {
					victim = w
					bestUse = m >> metaUseShift
				}
			}
		}
		if l == nil {
			c.Stats.Misses++
			c.victimIdx = victim
			c.victimBase = base
			c.victimTick = c.useTick
			return false, 0
		}
	}
	f := l.meta & flagMask
	if isWrite {
		f |= flagDirty
	}
	c.Stats.Hits++
	ready := l.ready
	if ready > now {
		c.Stats.LatePfHits++
	}
	if demand && f&flagPf != 0 {
		f &^= flagPf
		if ready > now {
			c.Stats.PfLate++
		} else {
			c.Stats.PfUseful++
		}
	}
	l.meta = c.useTick<<metaUseShift | f
	return true, ready
}

// Fill installs addr's line with the given fill-completion time, evicting
// the LRU way. It reports whether a dirty line was evicted (write-back
// traffic the bus model charges for).
func (c *Cache) Fill(addr uint64, readyAt uint64, dirty bool, isPrefetch bool) (evictedDirty bool) {
	if isPrefetch {
		c.Stats.Prefetches++
	}
	tag := addr >> c.lineBits
	base := int(tag&c.setMask) * c.assoc
	var victim int
	if c.victimTick == c.useTick && c.victimBase == base {
		victim = c.victimIdx
	} else {
		bestUse := ^uint64(0) // useTick never reaches this, so way 0 always wins it
		ways := c.lines[base : base+c.assoc]
		for w := range ways {
			m := ways[w].meta
			if m&flagValid == 0 {
				victim = w
				break
			}
			if m>>metaUseShift < bestUse {
				victim = w
				bestUse = m >> metaUseShift
			}
		}
	}
	v := &c.lines[base+victim]
	evictedDirty = v.meta&(flagValid|flagDirty) == flagValid|flagDirty
	if evictedDirty {
		c.Stats.Writebacks++
	}
	if v.meta&(flagValid|flagPf) == flagValid|flagPf {
		c.Stats.PfUnused++
	}
	c.useTick++
	nf := flagValid
	if dirty {
		nf |= flagDirty
	}
	if isPrefetch {
		nf |= flagPf
	}
	v.tag = tag
	v.meta = c.useTick<<metaUseShift | nf
	v.ready = readyAt
	c.lastWay[int(tag&c.setMask)] = uint8(victim)
	return evictedDirty
}

// Invalidate drops addr's line if resident (used by tests and by failure
// injection).
func (c *Cache) Invalidate(addr uint64) {
	if i := c.lookup(addr); i >= 0 {
		c.lines[i] = cacheLine{}
		c.victimTick = ^uint64(0) // hint may name a now-invalid way
	}
}

// Reset clears all lines and statistics.
func (c *Cache) Reset() {
	clear(c.lines)
	clear(c.lastWay)
	c.useTick = 0
	c.victimTick = ^uint64(0)
	c.Stats = CacheStats{}
}

// MissRatio returns misses/accesses, or 0 when idle.
func (s CacheStats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}
