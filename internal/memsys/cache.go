package memsys

import "fmt"

// CacheConfig sizes one cache level.
type CacheConfig struct {
	Name     string
	Size     int // total bytes; must be Assoc * LineSize * power-of-two sets
	LineSize int // bytes per line; power of two
	Assoc    int // ways per set
	HitLat   int // cycles to return a hit from this level
}

// line is one cache line's tag state. readyAt records when an in-flight
// fill completes: a "hit" on a line still being filled waits for it, which
// is how prefetch-too-late and miss coalescing behave on real hardware.
// pf marks a line installed by lfetch that no demand access has touched
// yet — the bit behind the prefetch-usefulness counters.
type line struct {
	tag     uint64
	valid   bool
	dirty   bool
	pf      bool
	readyAt uint64
	lastUse uint64 // LRU timestamp
}

// CacheStats counts accesses per level.
type CacheStats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Prefetches uint64 // fills initiated by lfetch
	LatePfHits uint64 // demand hits on a still-in-flight prefetch fill
	Writebacks uint64
	// Prefetch usefulness: where each prefetched line's first demand touch
	// found it — fill already complete (useful), fill still in flight
	// (late), or never touched before eviction (unused). Useful + Late +
	// Unused converges on Prefetches as lines age out.
	PfUseful uint64
	PfLate   uint64
	PfUnused uint64
}

// Cache is one set-associative, write-back, write-allocate cache level.
type Cache struct {
	cfg      CacheConfig
	sets     []line // numSets * assoc, row-major
	numSets  int
	lineBits uint
	setMask  uint64
	useTick  uint64
	Stats    CacheStats
}

// NewCache builds a cache from cfg. It panics on non-power-of-two or
// inconsistent geometry: configurations are static, so this is a
// programming error, not a runtime condition.
func NewCache(cfg CacheConfig) *Cache {
	if cfg.LineSize <= 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic(fmt.Sprintf("memsys: %s line size %d not a power of two", cfg.Name, cfg.LineSize))
	}
	if cfg.Assoc <= 0 || cfg.Size%(cfg.LineSize*cfg.Assoc) != 0 {
		panic(fmt.Sprintf("memsys: %s geometry %d/%d/%d inconsistent", cfg.Name, cfg.Size, cfg.LineSize, cfg.Assoc))
	}
	numSets := cfg.Size / (cfg.LineSize * cfg.Assoc)
	if numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("memsys: %s set count %d not a power of two", cfg.Name, numSets))
	}
	lineBits := uint(0)
	for 1<<lineBits < cfg.LineSize {
		lineBits++
	}
	return &Cache{
		cfg:      cfg,
		sets:     make([]line, numSets*cfg.Assoc),
		numSets:  numSets,
		lineBits: lineBits,
		setMask:  uint64(numSets - 1),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() int { return c.cfg.LineSize }

// lookup finds addr's line, returning its slot index or -1.
func (c *Cache) lookup(addr uint64) int {
	tag := addr >> c.lineBits
	set := int(tag & c.setMask)
	base := set * c.cfg.Assoc
	for w := 0; w < c.cfg.Assoc; w++ {
		l := &c.sets[base+w]
		if l.valid && l.tag == tag {
			return base + w
		}
	}
	return -1
}

// Probe reports whether addr is resident (valid, fill possibly still in
// flight) without touching LRU state or statistics.
func (c *Cache) Probe(addr uint64) bool { return c.lookup(addr) != -1 }

// Access looks up addr at time now. On a hit it returns (true, readyAt):
// readyAt <= now means the data is available immediately; a later readyAt
// means the line is still being filled (the caller waits). On a miss it
// returns (false, 0); the caller must Fill the line after resolving the
// next level. Stores mark the line dirty.
func (c *Cache) Access(now uint64, addr uint64, isWrite bool) (hit bool, readyAt uint64) {
	return c.access(now, addr, isWrite, true)
}

// accessPf is the lookup lfetch uses: identical timing, but it does not
// consume a line's pf bit — only demand accesses decide usefulness.
func (c *Cache) accessPf(now uint64, addr uint64) (hit bool, readyAt uint64) {
	return c.access(now, addr, false, false)
}

func (c *Cache) access(now uint64, addr uint64, isWrite, demand bool) (hit bool, readyAt uint64) {
	c.Stats.Accesses++
	c.useTick++
	idx := c.lookup(addr)
	if idx < 0 {
		c.Stats.Misses++
		return false, 0
	}
	l := &c.sets[idx]
	l.lastUse = c.useTick
	if isWrite {
		l.dirty = true
	}
	c.Stats.Hits++
	if l.readyAt > now {
		c.Stats.LatePfHits++
	}
	if demand && l.pf {
		l.pf = false
		if l.readyAt > now {
			c.Stats.PfLate++
		} else {
			c.Stats.PfUseful++
		}
	}
	return true, l.readyAt
}

// Fill installs addr's line with the given fill-completion time, evicting
// the LRU way. It reports whether a dirty line was evicted (write-back
// traffic the bus model charges for).
func (c *Cache) Fill(addr uint64, readyAt uint64, dirty bool, isPrefetch bool) (evictedDirty bool) {
	if isPrefetch {
		c.Stats.Prefetches++
	}
	tag := addr >> c.lineBits
	set := int(tag & c.setMask)
	base := set * c.cfg.Assoc
	victim := base
	for w := 0; w < c.cfg.Assoc; w++ {
		l := &c.sets[base+w]
		if !l.valid {
			victim = base + w
			break
		}
		if l.lastUse < c.sets[victim].lastUse {
			victim = base + w
		}
	}
	v := &c.sets[victim]
	evictedDirty = v.valid && v.dirty
	if evictedDirty {
		c.Stats.Writebacks++
	}
	if v.valid && v.pf {
		c.Stats.PfUnused++
	}
	c.useTick++
	*v = line{tag: tag, valid: true, dirty: dirty, pf: isPrefetch, readyAt: readyAt, lastUse: c.useTick}
	return evictedDirty
}

// Invalidate drops addr's line if resident (used by tests and by failure
// injection).
func (c *Cache) Invalidate(addr uint64) {
	if idx := c.lookup(addr); idx >= 0 {
		c.sets[idx] = line{}
	}
}

// Reset clears all lines and statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		c.sets[i] = line{}
	}
	c.useTick = 0
	c.Stats = CacheStats{}
}

// MissRatio returns misses/accesses, or 0 when idle.
func (s CacheStats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}
