package memsys

import "testing"

// These microbenchmarks bound the cost of the three access shapes the
// simulator performs most (DESIGN.md §12): a repeat L1 hit (the lastWay
// memo path), alternating I-line hits (the memo's worst case, resolved
// by the way scan), and a full three-level miss with fills (the victim-
// hint path). The end-to-end number lives in BenchmarkMIPS; these exist
// so a hot-path change can be attributed to the operation it touched.

func BenchmarkL1Hit(b *testing.B) {
	h := NewHierarchy(DefaultConfig())
	h.AccessLoad(0, 0x1000) // install
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.AccessLoad(uint64(i), 0x1000)
	}
}

func BenchmarkL1HitAlternating(b *testing.B) {
	h := NewHierarchy(DefaultConfig())
	h.AccessInst(0, 0x1000)
	h.AccessInst(0, 0x1040)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.AccessInst(uint64(i), 0x1000+uint64(i&1)*0x40)
	}
}

func BenchmarkFullMiss(b *testing.B) {
	h := NewHierarchy(DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.AccessLoad(uint64(i)*200, uint64(i)<<7)
	}
}
