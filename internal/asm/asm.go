// Package asm provides an assembler for the simulated IA-64-like ISA: it
// accepts a linear instruction stream with symbolic labels, packs it into
// bundles with automatically chosen templates, and resolves branch targets
// to bundle addresses. Labels always start a fresh bundle (branch targets
// are bundle-aligned, as on IA-64) and a branch always ends its bundle.
//
// The compiler (internal/compiler), the hand-written example kernels and
// ADORE's own prefetch-code emitter all build code through this package.
package asm

import (
	"fmt"

	"repro/internal/isa"
)

// Builder accumulates instructions and produces bundles.
type Builder struct {
	base    uint64
	pending []pendingInst
	labels  map[string]int // label -> index into pending where it binds
	err     error
}

type pendingInst struct {
	in    isa.Inst
	label string // branch target to resolve, "" if none
	align uint64 // when non-zero: padding marker, in/label unused
}

// New returns a Builder assembling code at the given base address, which
// must be 16-byte aligned.
func New(base uint64) *Builder {
	b := &Builder{base: base, labels: make(map[string]int)}
	if base%isa.BundleBytes != 0 {
		b.err = fmt.Errorf("asm: base %#x not bundle-aligned", base)
	}
	return b
}

// Label binds name to the next emitted instruction, forcing a bundle break.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.setErr(fmt.Errorf("asm: duplicate label %q", name))
		return
	}
	b.labels[name] = len(b.pending)
}

func (b *Builder) setErr(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Emit appends one instruction.
func (b *Builder) Emit(in isa.Inst) {
	b.pending = append(b.pending, pendingInst{in: in})
}

// Align pads with nop bundles until the next bundle address is a multiple
// of n (a power of two). Loop bodies are aligned so that distinct hot
// regions are far apart in the address space, as they are in real
// binaries where each loop lives in its own function.
func (b *Builder) Align(n uint64) {
	if n == 0 {
		return
	}
	if n%isa.BundleBytes != 0 || n&(n-1) != 0 {
		b.setErr(fmt.Errorf("asm: bad alignment %d", n))
		return
	}
	b.pending = append(b.pending, pendingInst{align: n})
}

// EmitBranch appends a branch whose Target resolves to label at Build time.
func (b *Builder) EmitBranch(in isa.Inst, label string) {
	if !isa.IsBranch(in.Op) {
		b.setErr(fmt.Errorf("asm: EmitBranch with non-branch op %s", in.Op))
		return
	}
	b.pending = append(b.pending, pendingInst{in: in, label: label})
}

// Convenience emitters. Register argument order mirrors the disassembly:
// destination first.

// Nop emits a no-op.
func (b *Builder) Nop() { b.Emit(isa.Nop) }

// Add emits r1 = r2 + r3.
func (b *Builder) Add(r1, r2, r3 isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpAdd, R1: r1, R2: r2, R3: r3})
}

// Sub emits r1 = r2 - r3.
func (b *Builder) Sub(r1, r2, r3 isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpSub, R1: r1, R2: r2, R3: r3})
}

// AddI emits r1 = imm + r3.
func (b *Builder) AddI(r1 isa.Reg, imm int64, r3 isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpAddI, R1: r1, Imm: imm, R3: r3})
}

// Mov emits r1 = r3.
func (b *Builder) Mov(r1, r3 isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpMov, R1: r1, R3: r3})
}

// MovI emits r1 = imm (movl, occupying an MLX bundle).
func (b *Builder) MovI(r1 isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.OpMovI, R1: r1, Imm: imm})
}

// ShlAdd emits r1 = (r2 << count) + r3.
func (b *Builder) ShlAdd(r1, r2 isa.Reg, count int64, r3 isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpShlAdd, R1: r1, R2: r2, Imm: count, R3: r3})
}

// Shl emits r1 = r2 << count.
func (b *Builder) Shl(r1, r2 isa.Reg, count int64) {
	b.Emit(isa.Inst{Op: isa.OpShl, R1: r1, R2: r2, Imm: count})
}

// Shr emits r1 = r2 >> count (logical).
func (b *Builder) Shr(r1, r2 isa.Reg, count int64) {
	b.Emit(isa.Inst{Op: isa.OpShr, R1: r1, R2: r2, Imm: count})
}

// Ld emits a load of size bytes: r1 = [r3], post-incrementing r3 by inc.
func (b *Builder) Ld(size int, r1, r3 isa.Reg, inc int64) {
	var op isa.Op
	switch size {
	case 1:
		op = isa.OpLd1
	case 2:
		op = isa.OpLd2
	case 4:
		op = isa.OpLd4
	case 8:
		op = isa.OpLd8
	default:
		b.setErr(fmt.Errorf("asm: bad load size %d", size))
		return
	}
	b.Emit(isa.Inst{Op: op, R1: r1, R3: r3, PostInc: inc})
}

// LdS emits a speculative non-faulting load r1 = [r3].
func (b *Builder) LdS(r1, r3 isa.Reg, inc int64) {
	b.Emit(isa.Inst{Op: isa.OpLdS, R1: r1, R3: r3, PostInc: inc})
}

// St emits a store of size bytes: [r3] = r2, post-incrementing r3 by inc.
func (b *Builder) St(size int, r3, r2 isa.Reg, inc int64) {
	var op isa.Op
	switch size {
	case 1:
		op = isa.OpSt1
	case 2:
		op = isa.OpSt2
	case 4:
		op = isa.OpSt4
	case 8:
		op = isa.OpSt8
	default:
		b.setErr(fmt.Errorf("asm: bad store size %d", size))
		return
	}
	b.Emit(isa.Inst{Op: op, R2: r2, R3: r3, PostInc: inc})
}

// Lfetch emits a prefetch of the line at [r3], post-incrementing by inc.
func (b *Builder) Lfetch(r3 isa.Reg, inc int64) {
	b.Emit(isa.Inst{Op: isa.OpLfetch, R3: r3, PostInc: inc})
}

// LdF emits f1 = [r3] (double).
func (b *Builder) LdF(f1 isa.FReg, r3 isa.Reg, inc int64) {
	b.Emit(isa.Inst{Op: isa.OpLdF, F1: f1, R3: r3, PostInc: inc})
}

// StF emits [r3] = f1 (double).
func (b *Builder) StF(r3 isa.Reg, f1 isa.FReg, inc int64) {
	b.Emit(isa.Inst{Op: isa.OpStF, F1: f1, R3: r3, PostInc: inc})
}

// Fma emits f1 = f2*f3 + f4.
func (b *Builder) Fma(f1, f2, f3, f4 isa.FReg) {
	b.Emit(isa.Inst{Op: isa.OpFma, F1: f1, F2: f2, F3: f3, F4: f4})
}

// FAdd emits f1 = f2 + f3.
func (b *Builder) FAdd(f1, f2, f3 isa.FReg) {
	b.Emit(isa.Inst{Op: isa.OpFAdd, F1: f1, F2: f2, F3: f3})
}

// FMul emits f1 = f2 * f3.
func (b *Builder) FMul(f1, f2, f3 isa.FReg) {
	b.Emit(isa.Inst{Op: isa.OpFMul, F1: f1, F2: f2, F3: f3})
}

// FSub emits f1 = f2 - f3.
func (b *Builder) FSub(f1, f2, f3 isa.FReg) {
	b.Emit(isa.Inst{Op: isa.OpFSub, F1: f1, F2: f2, F3: f3})
}

// GetF emits r1 = bits(f2).
func (b *Builder) GetF(r1 isa.Reg, f2 isa.FReg) {
	b.Emit(isa.Inst{Op: isa.OpGetF, R1: r1, F2: f2})
}

// SetF emits f1 = bits(r2).
func (b *Builder) SetF(f1 isa.FReg, r2 isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpSetF, F1: f1, R2: r2})
}

// FCvtFX emits r1 = int64(f2).
func (b *Builder) FCvtFX(r1 isa.Reg, f2 isa.FReg) {
	b.Emit(isa.Inst{Op: isa.OpFCvtFX, R1: r1, F2: f2})
}

// FCvtXF emits f1 = float64(r2).
func (b *Builder) FCvtXF(f1 isa.FReg, r2 isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpFCvtXF, F1: f1, R2: r2})
}

// Cmp emits p1, p2 = r2 REL r3.
func (b *Builder) Cmp(rel isa.CmpRel, p1, p2 isa.PReg, r2, r3 isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpCmp, Rel: rel, P1: p1, P2: p2, R2: r2, R3: r3})
}

// CmpI emits p1, p2 = imm REL r3.
func (b *Builder) CmpI(rel isa.CmpRel, p1, p2 isa.PReg, imm int64, r3 isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpCmpI, Rel: rel, P1: p1, P2: p2, Imm: imm, R3: r3})
}

// Br emits an unconditional branch to label.
func (b *Builder) Br(label string) {
	b.EmitBranch(isa.Inst{Op: isa.OpBr}, label)
}

// BrCond emits a branch to label taken when predicate qp is true.
func (b *Builder) BrCond(qp isa.PReg, label string) {
	b.EmitBranch(isa.Inst{Op: isa.OpBrCond, QP: qp}, label)
}

// BrCondSWP emits a software-pipelined loop back edge (see isa.Inst.SWPLoop).
func (b *Builder) BrCondSWP(qp isa.PReg, label string) {
	b.EmitBranch(isa.Inst{Op: isa.OpBrCond, QP: qp, SWPLoop: true}, label)
}

// BrCall emits a call to label with the return PC in breg.
func (b *Builder) BrCall(breg isa.BReg, label string) {
	b.EmitBranch(isa.Inst{Op: isa.OpBrCall, B: breg}, label)
}

// BrRet emits a return through breg.
func (b *Builder) BrRet(breg isa.BReg) {
	b.Emit(isa.Inst{Op: isa.OpBrRet, B: breg})
}

// Halt emits the machine-stop instruction.
func (b *Builder) Halt() { b.Emit(isa.Inst{Op: isa.OpHalt}) }

// Alloc emits a register-stack allocation marker.
func (b *Builder) Alloc() { b.Emit(isa.Inst{Op: isa.OpAlloc}) }

// Result is assembled code: bundles, the base address, and resolved labels.
type Result struct {
	Base    uint64
	Bundles []isa.Bundle
	Labels  map[string]uint64 // label -> bundle address
}

// AddrOf returns the resolved address of label.
func (r *Result) AddrOf(label string) (uint64, bool) {
	a, ok := r.Labels[label]
	return a, ok
}

// Build packs the instruction stream into bundles and resolves labels.
func (b *Builder) Build() (*Result, error) {
	if b.err != nil {
		return nil, b.err
	}
	// Invert the label map: instruction index -> labels bound there.
	labelAt := make(map[int][]string)
	for name, idx := range b.labels {
		labelAt[idx] = append(labelAt[idx], name)
	}

	res := &Result{Base: b.base, Labels: make(map[string]uint64)}
	type fixup struct {
		bundle, slot int
		label        string
	}
	var fixups []fixup

	cur := make([]pendingInst, 0, 3)
	flush := func() error {
		if len(cur) == 0 {
			return nil
		}
		bundle, slotOf, err := packBundle(cur)
		if err != nil {
			return err
		}
		for i, p := range cur {
			if p.label != "" {
				fixups = append(fixups, fixup{bundle: len(res.Bundles), slot: slotOf[i], label: p.label})
			}
		}
		res.Bundles = append(res.Bundles, bundle)
		cur = cur[:0]
		return nil
	}

	for i, p := range b.pending {
		if names := labelAt[i]; len(names) > 0 {
			if err := flush(); err != nil {
				return nil, err
			}
			addr := b.base + uint64(len(res.Bundles))*isa.BundleBytes
			for _, n := range names {
				res.Labels[n] = addr
			}
		}
		if p.align != 0 {
			if err := flush(); err != nil {
				return nil, err
			}
			for (b.base+uint64(len(res.Bundles))*isa.BundleBytes)%p.align != 0 {
				res.Bundles = append(res.Bundles, isa.NopBundle())
			}
			continue
		}
		// movl needs slots 1-2 of an MLX bundle: it can only follow at
		// most one prior instruction in the bundle.
		if isa.UnitOf(p.in.Op) == isa.UnitLX && len(cur) > 1 {
			if err := flush(); err != nil {
				return nil, err
			}
		}
		if !fitsWith(cur, p) {
			if err := flush(); err != nil {
				return nil, err
			}
		}
		cur = append(cur, p)
		if isa.IsBranch(p.in.Op) || isa.UnitOf(p.in.Op) == isa.UnitLX {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	// Labels bound past the last instruction point just after the code.
	if names := labelAt[len(b.pending)]; len(names) > 0 {
		addr := b.base + uint64(len(res.Bundles))*isa.BundleBytes
		for _, n := range names {
			res.Labels[n] = addr
		}
	}

	for _, f := range fixups {
		addr, ok := res.Labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q", f.label)
		}
		res.Bundles[f.bundle].Slots[f.slot].Target = addr
	}
	for i := range res.Bundles {
		if err := res.Bundles[i].Validate(); err != nil {
			return nil, fmt.Errorf("asm: bundle %d: %w", i, err)
		}
	}
	return res, nil
}

// fitsWith reports whether appending p to the in-progress bundle can still
// be packed into some template.
func fitsWith(cur []pendingInst, p pendingInst) bool {
	if len(cur) >= 3 {
		return false
	}
	trial := make([]pendingInst, len(cur)+1)
	copy(trial, cur)
	trial[len(cur)] = p
	_, _, err := packBundle(trial)
	return err == nil
}

// packBundle places up to three instructions into a bundle, padding with
// nops, and returns the slot index of each input instruction.
func packBundle(insts []pendingInst) (isa.Bundle, []int, error) {
	if len(insts) > 3 {
		return isa.Bundle{}, nil, fmt.Errorf("asm: %d instructions in one bundle", len(insts))
	}
	// movl case: must sit at slot 1 of MLX with an optional M/A op at slot 0.
	for i, p := range insts {
		if isa.UnitOf(p.in.Op) == isa.UnitLX {
			if i > 1 || len(insts) > i+1 {
				return isa.Bundle{}, nil, fmt.Errorf("asm: movl must end its bundle")
			}
			bundle := isa.Bundle{Tmpl: isa.TmplMLX}
			slots := make([]int, len(insts))
			if i == 1 {
				first := insts[0].in
				if !isa.SlotAccepts(isa.UnitM, isa.UnitOf(first.Op)) {
					return isa.Bundle{}, nil, fmt.Errorf("asm: %s cannot precede movl in MLX", first.Op)
				}
				bundle.Slots[0] = first
				slots[0] = 0
			}
			bundle.Slots[1] = p.in
			slots[i] = 1
			return bundle, slots, nil
		}
	}

	// General case: preserve program order but allow nop padding —
	// e.g. a bundle-leading FP op must sit in slot 1 of MFI, since
	// IA-64 has no F-first template. Greedily assign each instruction
	// the earliest acceptable slot of each candidate template.
	tmpl, slots, ok := isa.AssignSlots(unitsOf(insts))
	if !ok {
		return isa.Bundle{}, nil, fmt.Errorf("asm: no template for units %v", unitsOf(insts))
	}
	bundle := isa.Bundle{Tmpl: tmpl}
	for i, p := range insts {
		bundle.Slots[slots[i]] = p.in
	}
	return bundle, slots, nil
}

func unitsOf(insts []pendingInst) []isa.Unit {
	us := make([]isa.Unit, len(insts))
	for i, p := range insts {
		us[i] = isa.UnitOf(p.in.Op)
	}
	return us
}
