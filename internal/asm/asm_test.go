package asm

import (
	"testing"

	"repro/internal/isa"
)

func TestLabelsStartBundles(t *testing.T) {
	b := New(0x1000)
	b.AddI(4, 1, 4)
	b.AddI(5, 1, 5)
	b.Label("loop")
	b.AddI(6, 1, 6)
	b.CmpI(isa.CmpLt, 1, 2, 100, 6)
	b.BrCond(1, "loop")
	r, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	addr, ok := r.AddrOf("loop")
	if !ok {
		t.Fatal("label missing")
	}
	if addr != 0x1010 {
		t.Fatalf("loop at %#x, want 0x1010", addr)
	}
	// The branch's target must be resolved.
	found := false
	for _, bd := range r.Bundles {
		for _, in := range bd.Slots {
			if in.Op == isa.OpBrCond {
				found = true
				if in.Target != addr {
					t.Fatalf("branch target %#x, want %#x", in.Target, addr)
				}
			}
		}
	}
	if !found {
		t.Fatal("branch not emitted")
	}
}

func TestBranchEndsBundle(t *testing.T) {
	b := New(0)
	b.Label("top")
	b.AddI(4, 1, 4)
	b.Br("top")
	b.AddI(5, 1, 5)
	r, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// add+br fit one bundle; the trailing add must start a new bundle.
	if len(r.Bundles) != 2 {
		t.Fatalf("bundles = %d, want 2", len(r.Bundles))
	}
	if !isa.IsBranch(r.Bundles[0].Slots[1].Op) && !isa.IsBranch(r.Bundles[0].Slots[2].Op) {
		t.Fatalf("first bundle has no branch: %v", r.Bundles[0])
	}
}

func TestMovlGetsMLX(t *testing.T) {
	b := New(0)
	b.MovI(4, 1<<40)
	b.MovI(5, 2<<40)
	b.AddI(6, 1, 6)
	r, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if r.Bundles[0].Tmpl != isa.TmplMLX || r.Bundles[1].Tmpl != isa.TmplMLX {
		t.Fatalf("templates = %v %v", r.Bundles[0].Tmpl, r.Bundles[1].Tmpl)
	}
}

func TestTwoLoadsShareBundle(t *testing.T) {
	b := New(0)
	b.Ld(8, 4, 10, 0)
	b.Ld(8, 5, 11, 0)
	b.AddI(6, 1, 6)
	r, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Bundles) != 1 || r.Bundles[0].Tmpl != isa.TmplMMI {
		t.Fatalf("got %d bundles, first %v", len(r.Bundles), r.Bundles[0])
	}
}

func TestThreeMemOpsSplit(t *testing.T) {
	b := New(0)
	b.Ld(8, 4, 10, 0)
	b.Ld(8, 5, 11, 0)
	b.Ld(8, 6, 12, 0)
	r, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Bundles) != 2 {
		t.Fatalf("bundles = %d, want 2 (no MMM template)", len(r.Bundles))
	}
}

func TestUndefinedLabelFails(t *testing.T) {
	b := New(0)
	b.Br("nowhere")
	if _, err := b.Build(); err == nil {
		t.Fatal("undefined label accepted")
	}
}

func TestDuplicateLabelFails(t *testing.T) {
	b := New(0)
	b.Label("x")
	b.Nop()
	b.Label("x")
	b.Nop()
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate label accepted")
	}
}

func TestUnalignedBaseFails(t *testing.T) {
	b := New(8)
	b.Nop()
	if _, err := b.Build(); err == nil {
		t.Fatal("unaligned base accepted")
	}
}

func TestAllBundlesValid(t *testing.T) {
	b := New(0)
	b.MovI(10, 0x10000)
	b.Label("loop")
	b.LdF(2, 10, 8)
	b.Fma(3, 2, 1, 3)
	b.StF(11, 3, 8)
	b.Lfetch(12, 64)
	b.AddI(4, -1, 4)
	b.CmpI(isa.CmpLt, 1, 2, 0, 4)
	b.BrCond(1, "loop")
	b.Halt()
	r, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for i, bd := range r.Bundles {
		if err := bd.Validate(); err != nil {
			t.Errorf("bundle %d invalid: %v", i, err)
		}
	}
}

func TestLabelAtEnd(t *testing.T) {
	b := New(0)
	b.Nop()
	b.Label("end")
	r, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := r.AddrOf("end"); !ok || a != uint64(len(r.Bundles))*isa.BundleBytes {
		t.Fatalf("end label = %#x, %v", a, ok)
	}
}

func TestAlignPadsWithNops(t *testing.T) {
	b := New(0)
	b.Nop()
	b.Align(64) // 4 bundles
	b.Label("aligned")
	b.AddI(4, 1, 4)
	r, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	addr, ok := r.AddrOf("aligned")
	if !ok || addr != 64 {
		t.Fatalf("aligned label at %#x, want 0x40", addr)
	}
	// Padding bundles are pure nops.
	for i := 1; i < 4; i++ {
		for _, in := range r.Bundles[i].Slots {
			if in.Op != isa.OpNop {
				t.Fatalf("padding bundle %d contains %v", i, in)
			}
		}
	}
}

func TestAlignNoOpWhenAlreadyAligned(t *testing.T) {
	b := New(0)
	b.Align(64)
	b.Label("start")
	b.Nop()
	r, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if a, _ := r.AddrOf("start"); a != 0 {
		t.Fatalf("start at %#x", a)
	}
	if len(r.Bundles) != 1 {
		t.Fatalf("bundles = %d", len(r.Bundles))
	}
}

func TestAlignRejectsBadValues(t *testing.T) {
	b := New(0)
	b.Align(48) // not a power of two
	b.Nop()
	if _, err := b.Build(); err == nil {
		t.Fatal("bad alignment accepted")
	}
	b2 := New(0)
	b2.Align(8) // smaller than a bundle
	b2.Nop()
	if _, err := b2.Build(); err == nil {
		t.Fatal("sub-bundle alignment accepted")
	}
}
