// adore-lint runs the static machine-code verifier (internal/verify) over
// compiled workloads and prints findings with bundle/slot coordinates. By
// default it lints the generated image of every workload at every opt
// level; -adore additionally runs each workload under the dynamic
// optimizer and lints the installed trace pool plus any traces the runtime
// verifier rejected.
//
// Usage:
//
//	adore-lint [-bench all] [-level all] [-advisory] [-adore] [-scale 0.1]
//
// Exit status is non-zero when any error-severity finding is reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/cmd/internal/cli"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/pmu"
	"repro/internal/program"
	"repro/internal/verify"
	"repro/internal/workloads"
)

func main() {
	bench := flag.String("bench", "all", "benchmark to lint, or \"all\": "+strings.Join(workloads.Names(), " "))
	level := flag.String("level", "all", "opt level: O2, O3, or \"all\"")
	scale := flag.Float64("scale", 0.1, "workload scale factor (used with -adore)")
	swp := flag.Bool("swp", false, "compile with software pipelining")
	noReserve := flag.Bool("noreserve", false, "compile without reserving r27-r30/p6 for the runtime")
	advisory := flag.Bool("advisory", false, "also report advisory findings (RAW inside a bundle)")
	dynamic := flag.Bool("adore", false, "run each workload under ADORE and lint the trace pool too")
	traceFile := flag.String("trace", "", "validate a Chrome trace-event file (as written by adore-bench -trace) and exit")
	flag.Parse()

	if *traceFile != "" {
		data, err := os.ReadFile(*traceFile)
		cli.Fatal(err)
		n, err := adore.ValidateChromeTrace(data)
		if err != nil {
			cli.Fatal(fmt.Errorf("%s: %w", *traceFile, err))
		}
		fmt.Printf("%s: valid Chrome trace, %d timestamped events\n", *traceFile, n)
		return
	}

	var levels []compiler.OptLevel
	switch *level {
	case "all":
		levels = []compiler.OptLevel{compiler.O2, compiler.O3}
	case "O2", "o2":
		levels = []compiler.OptLevel{compiler.O2}
	case "O3", "o3":
		levels = []compiler.OptLevel{compiler.O3}
	default:
		cli.Fatal(fmt.Errorf("unknown level %q", *level))
	}
	var benches []adore.WorkloadInfo
	if *bench == "all" {
		benches = adore.Benchmarks(*scale)
	} else {
		b, err := adore.Benchmark(*bench, *scale)
		cli.Fatal(err)
		benches = []adore.WorkloadInfo{b}
	}

	errorFindings := 0
	report := func(tag string, fs []verify.Finding) {
		for _, f := range fs {
			if f.Sev == verify.SevError {
				errorFindings++
			}
			fmt.Printf("%-18s %-8s %s\n", tag, f.Sev, f)
		}
	}

	for _, b := range benches {
		for _, lv := range levels {
			opts := compiler.DefaultOptions()
			opts.Level = lv
			opts.SWP = *swp
			opts.ReserveRegs = !*noReserve
			tag := fmt.Sprintf("%s/%s", b.Name, lv)
			build, err := compiler.Build(b.Kernel, opts)
			if err != nil {
				// Build itself verifies: a failure here IS a finding.
				fmt.Printf("%-18s %-8s %v\n", tag, "error", err)
				errorFindings++
				continue
			}
			fs := verify.CheckImage(build.Image, verify.Options{
				Advisory:           *advisory,
				ReservedRegsUnused: opts.ReserveRegs,
			})
			report(tag, fs)
			n := len(build.Image.Code.Bundles)
			if *dynamic {
				rejected, poolFs, err := lintRun(build, *advisory)
				if err != nil {
					cli.Fatal(fmt.Errorf("%s: %w", tag, err))
				}
				report(tag+"+adore", rejected)
				report(tag+"+pool", poolFs)
				fmt.Printf("%-18s ok: %d bundles, %d rejected trace finding(s), %d pool finding(s)\n",
					tag, n, len(rejected), len(poolFs))
			} else {
				fmt.Printf("%-18s ok: %d bundles, %d finding(s)\n", tag, n, len(fs))
			}
		}
	}
	if errorFindings > 0 {
		fmt.Printf("\n%d error finding(s)\n", errorFindings)
		os.Exit(1)
	}
}

// lintRun executes one workload under ADORE with runtime verification on,
// returning the findings of rejected traces and a lint of the installed
// trace pool.
func lintRun(build *compiler.BuildResult, advisory bool) (rejected, pool []verify.Finding, err error) {
	img := build.Image
	code := program.NewCodeSpace()
	seg := &program.Segment{Name: img.Name, Base: img.Code.Base,
		Bundles: append([]isa.Bundle{}, img.Code.Bundles...)}
	if err := code.AddSegment(seg); err != nil {
		return nil, nil, err
	}
	mem := memsys.NewMemory()
	if img.InitData != nil {
		img.InitData(mem)
	}
	hier := memsys.NewHierarchy(memsys.DefaultConfig())
	ccfg := core.DefaultConfig()
	ccfg.Verify = true
	p := pmu.New(ccfg.Sampling)
	m := cpu.New(cpu.DefaultConfig(), code, mem, hier, p)
	m.SetPC(img.Entry)
	ctrl, err := core.NewController(ccfg, code, p)
	if err != nil {
		return nil, nil, err
	}
	ctrl.Attach(m)
	if _, err := m.RunContext(cli.Context(), 2_000_000_000); err != nil {
		return nil, nil, err
	}
	for _, s := range code.Segments() {
		if s.Name != "trace-pool" {
			continue
		}
		used := &program.Segment{Name: s.Name, Base: s.Base, Bundles: s.Bundles[:ctrl.Pool().Used()]}
		pool = append(pool, verify.CheckSegment(used, verify.Options{Advisory: advisory, Code: code})...)
	}
	return ctrl.Findings(), pool, nil
}
