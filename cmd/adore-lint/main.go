// adore-lint runs the static machine-code verifier (internal/verify) over
// compiled workloads and prints findings with bundle/slot coordinates. By
// default it lints the generated image of every workload at every opt
// level; -adore additionally runs each workload under the dynamic
// optimizer and lints the installed trace pool plus any traces the runtime
// verifier rejected.
//
// -analyze additionally runs the internal/analysis engine over each image
// (and, with -adore, over the installed trace pool), printing per-loop
// CFG, liveness and load-classification reports plus static findings
// (unreachable bundles, dead lfetches, prefetches no load consumes).
//
// Usage:
//
//	adore-lint [-bench all] [-level all] [-advisory] [-adore] [-analyze]
//	           [-werror] [-scale 0.1]
//
// Identical findings surfacing at multiple boundaries (image lint, trace
// reject, pool lint) are reported once. Exit status is non-zero when any
// error-severity finding is reported; -werror promotes advisory and
// analysis findings to errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/cmd/internal/cli"
	"repro/internal/analysis"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/pmu"
	"repro/internal/program"
	"repro/internal/verify"
	"repro/internal/workloads"
)

func main() {
	bench := flag.String("bench", "all", "benchmark to lint, or \"all\": "+strings.Join(workloads.Names(), " "))
	level := flag.String("level", "all", "opt level: O2, O3, or \"all\"")
	scale := flag.Float64("scale", 0.1, "workload scale factor (used with -adore)")
	swp := flag.Bool("swp", false, "compile with software pipelining")
	noReserve := flag.Bool("noreserve", false, "compile without reserving r27-r30/p6 for the runtime")
	advisory := flag.Bool("advisory", false, "also report advisory findings (RAW inside or across bundles)")
	dynamic := flag.Bool("adore", false, "run each workload under ADORE and lint the trace pool too")
	analyze := flag.Bool("analyze", false, "print per-loop CFG/liveness/classification reports and static findings")
	werror := flag.Bool("werror", false, "treat advisory and analysis findings as errors")
	traceFile := flag.String("trace", "", "validate a Chrome trace-event file (as written by adore-bench -trace) and exit")
	flag.Parse()

	if *traceFile != "" {
		data, err := os.ReadFile(*traceFile)
		cli.Fatal(err)
		n, err := adore.ValidateChromeTrace(data)
		if err != nil {
			cli.Fatal(fmt.Errorf("%s: %w", *traceFile, err))
		}
		fmt.Printf("%s: valid Chrome trace, %d timestamped events\n", *traceFile, n)
		return
	}

	var levels []compiler.OptLevel
	switch *level {
	case "all":
		levels = []compiler.OptLevel{compiler.O2, compiler.O3}
	case "O2", "o2":
		levels = []compiler.OptLevel{compiler.O2}
	case "O3", "o3":
		levels = []compiler.OptLevel{compiler.O3}
	default:
		cli.Fatal(fmt.Errorf("unknown level %q", *level))
	}
	var benches []adore.WorkloadInfo
	if *bench == "all" {
		benches = adore.Benchmarks(*scale)
	} else {
		b, err := adore.Benchmark(*bench, *scale)
		cli.Fatal(err)
		benches = []adore.WorkloadInfo{b}
	}

	errorFindings := 0
	seen := make(map[verify.Finding]bool)
	report := func(tag string, fs []verify.Finding) {
		for _, f := range fs {
			if seen[f] {
				continue // already reported at an earlier boundary
			}
			seen[f] = true
			if f.Sev == verify.SevError || *werror {
				errorFindings++
			}
			fmt.Printf("%-18s %-8s %s\n", tag, f.Sev, f)
		}
	}
	analyzeSeg := func(tag string, seg *program.Segment) {
		res := analysis.AnalyzeSegment(seg)
		fmt.Printf("%-18s analysis:\n", tag)
		res.Fprint(os.Stdout)
		if *werror {
			errorFindings += len(res.Findings)
		}
	}

	for _, b := range benches {
		for _, lv := range levels {
			opts := compiler.DefaultOptions()
			opts.Level = lv
			opts.SWP = *swp
			opts.ReserveRegs = !*noReserve
			tag := fmt.Sprintf("%s/%s", b.Name, lv)
			build, err := compiler.Build(b.Kernel, opts)
			if err != nil {
				// Build itself verifies: a failure here IS a finding.
				fmt.Printf("%-18s %-8s %v\n", tag, "error", err)
				errorFindings++
				continue
			}
			fs := verify.CheckImage(build.Image, verify.Options{
				Advisory:           *advisory,
				ReservedRegsUnused: opts.ReserveRegs,
			})
			report(tag, fs)
			if *analyze {
				analyzeSeg(tag, build.Image.Code)
			}
			n := len(build.Image.Code.Bundles)
			if *dynamic {
				rejected, poolFs, used, err := lintRun(build, *advisory)
				if err != nil {
					cli.Fatal(fmt.Errorf("%s: %w", tag, err))
				}
				report(tag+"+adore", rejected)
				report(tag+"+pool", poolFs)
				if *analyze && used != nil {
					analyzeSeg(tag+"+pool", used)
				}
				fmt.Printf("%-18s ok: %d bundles, %d rejected trace finding(s), %d pool finding(s)\n",
					tag, n, len(rejected), len(poolFs))
			} else {
				fmt.Printf("%-18s ok: %d bundles, %d finding(s)\n", tag, n, len(fs))
			}
		}
	}
	if errorFindings > 0 {
		fmt.Printf("\n%d error finding(s)\n", errorFindings)
		os.Exit(1)
	}
}

// lintRun executes one workload under ADORE with runtime verification on,
// returning the findings of rejected traces, a lint of the installed trace
// pool, and the used portion of the pool segment (nil when nothing was
// installed) for further analysis.
func lintRun(build *compiler.BuildResult, advisory bool) (rejected, pool []verify.Finding, used *program.Segment, err error) {
	img := build.Image
	code := program.NewCodeSpace()
	seg := &program.Segment{Name: img.Name, Base: img.Code.Base,
		Bundles: append([]isa.Bundle{}, img.Code.Bundles...)}
	if err := code.AddSegment(seg); err != nil {
		return nil, nil, nil, err
	}
	mem := memsys.NewMemory()
	if img.InitData != nil {
		img.InitData(mem)
	}
	hier := memsys.NewHierarchy(memsys.DefaultConfig())
	ccfg := core.DefaultConfig()
	ccfg.Verify = true
	p := pmu.New(ccfg.Sampling)
	m := cpu.New(cpu.DefaultConfig(), code, mem, hier, p)
	m.SetPC(img.Entry)
	ctrl, err := core.NewController(ccfg, code, p)
	if err != nil {
		return nil, nil, nil, err
	}
	ctrl.Attach(m)
	if _, err := m.RunContext(cli.Context(), 2_000_000_000); err != nil {
		return nil, nil, nil, err
	}
	for _, s := range code.Segments() {
		if s.Name != "trace-pool" || ctrl.Pool().Used() == 0 {
			continue
		}
		used = &program.Segment{Name: s.Name, Base: s.Base, Bundles: s.Bundles[:ctrl.Pool().Used()]}
		pool = append(pool, verify.CheckSegment(used, verify.Options{Advisory: advisory, Code: code})...)
	}
	return ctrl.Findings(), pool, used, nil
}
