// adore-trace runs a workload under ADORE and dumps what the optimizer
// did: each optimization attempt with its delinquent loads and pattern
// classification, the installed patches, and the disassembled trace pool.
//
// Usage:
//
//	adore-trace -bench mcf [-scale 0.3] [-pool] [-trace out.json] [-events out.jsonl]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
	"repro/cmd/internal/cli"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/obs"
	"repro/internal/pmu"
	"repro/internal/program"
	"repro/internal/workloads"
)

func main() {
	name := flag.String("bench", "mcf", "benchmark: "+strings.Join(workloads.Names(), " "))
	scale := flag.Float64("scale", 0.3, "workload scale factor")
	policy := flag.String("policy", "", "prefetch policy: "+strings.Join(core.PrefetchPolicyNames(), " "))
	selector := flag.Bool("selector", false, "pick the prefetch policy at runtime per phase")
	dumpPool := flag.Bool("pool", false, "disassemble the trace pool at exit")
	traceOut := flag.String("trace", "", "write a Perfetto-loadable Chrome trace to this file")
	eventsOut := flag.String("events", "", "write the event stream as JSONL to this file")
	flag.Parse()
	observe := *traceOut != "" || *eventsOut != ""

	bench, err := adore.Benchmark(*name, *scale)
	fatal(err)
	build, err := adore.Compile(bench.Kernel, adore.CompileOptions())
	fatal(err)
	img := build.Image

	code := program.NewCodeSpace()
	seg := &program.Segment{Name: img.Name, Base: img.Code.Base,
		Bundles: append([]isa.Bundle{}, img.Code.Bundles...)}
	fatal(code.AddSegment(seg))
	mem := memsys.NewMemory()
	img.InitData(mem)
	hier := memsys.NewHierarchy(memsys.DefaultConfig())
	ccfg := core.DefaultConfig()
	ccfg.Observe = observe
	ccfg.Policy = *policy
	ccfg.Selector = *selector
	mcfg := cpu.DefaultConfig()
	mcfg.Accounting = observe
	p := pmu.New(ccfg.Sampling)
	m := cpu.New(mcfg, code, mem, hier, p)
	m.SetPC(img.Entry)
	m.SetImage(img)
	ctrl, err := core.NewController(ccfg, code, p)
	fatal(err)
	ctrl.SetImage(img)

	ctrl.OnOptimize = func(t *core.Trace, loads []core.DelinquentLoad, res core.OptimizeResult) {
		fmt.Printf("[%12d] optimize trace @%#x (loop=%v, %d bundles, %d insts)\n",
			m.Now(), t.Start, t.IsLoop, len(t.Bundles), t.InstCount())
		for _, dl := range loads {
			fmt.Printf("  delinquent load pc=%#x: %d events, avg latency %.0f cycles\n",
				dl.PC, dl.Count, dl.AvgLatency)
		}
		fmt.Printf("  inserted: %d direct, %d indirect, %d pointer-chasing (failures %d, skipped %d)\n",
			res.Direct, res.Indirect, res.Pointer, res.Failures, res.Skipped)
	}
	ctrl.Attach(m)
	st, err := m.RunContext(cli.Context(), 5_000_000_000)
	fatal(err)

	fmt.Printf("\nrun: %d cycles, %d instructions (CPI %.3f)\n", st.Cycles, st.Retired, st.CPI())
	fmt.Printf("ADORE: %+v\n", ctrl.Stats)
	if d := ctrl.Stats.SamplesDropped; d > 0 {
		fmt.Printf("samples dropped: %d\n", d)
		fmt.Fprintf(os.Stderr, "warning: %d PMU samples dropped (unhandled SSB overflows); the profile is incomplete\n", d)
	}
	fmt.Printf("prefetches inserted: %d (%d direct, %d indirect, %d pointer-chasing)\n",
		ctrl.Stats.TotalPrefetches(), ctrl.Stats.DirectPrefetches,
		ctrl.Stats.IndirectPrefetches, ctrl.Stats.PointerPrefetches)
	fmt.Printf("verifier: %d traces checked, %d rejected\n",
		ctrl.Stats.TracesVerified, ctrl.Stats.VerifyRejects)
	fmt.Printf("policy: %s\n", ctrl.PolicyKey())
	if use := ctrl.PolicyUse(); use != nil {
		fmt.Printf("  selector decisions: %d (%d fell back to nextline)\n",
			ctrl.Stats.PolicySelections, ctrl.Stats.PolicySwitches)
		for _, pol := range core.PrefetchPolicyNames() {
			if n := use[pol]; n > 0 {
				fmt.Printf("    %-9s %d traces\n", pol, n)
			}
		}
	}
	for _, rec := range ctrl.Patches() {
		fmt.Printf("patch @%#x -> trace %#x..%#x (active %v)\n", rec.Entry, rec.TraceAddr, rec.TraceEnd, rec.Active)
	}
	if *dumpPool {
		for _, s := range code.Segments() {
			if s.Name != "trace-pool" {
				continue
			}
			n := ctrl.Pool().Used()
			sub := &program.Segment{Name: s.Name, Base: s.Base, Bundles: s.Bundles[:n]}
			fmt.Printf("\ntrace pool (%d bundles):\n%s", n, program.Listing(sub))
		}
	}
	if observe {
		cap := ctrl.Capture()
		fmt.Printf("events: %d recorded, %d dropped\n", len(cap.Events), cap.Dropped)
		if cap.Dropped > 0 {
			fmt.Fprintf(os.Stderr, "warning: %d observability events dropped (ring overwrites); the exported stream is incomplete\n", cap.Dropped)
		}
		export(*traceOut, cap, obs.WriteChromeTrace)
		export(*eventsOut, cap, obs.WriteJSONL)
	}
}

// export writes the capture through render when path is set.
func export(path string, c *obs.Capture, render func(w io.Writer, c *obs.Capture) error) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	fatal(err)
	fatal(render(f, c))
	fatal(f.Close())
	fmt.Printf("wrote %s\n", path)
}

func fatal(err error) { cli.Fatal(err) }
