// adore-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	adore-bench [-exp fig7a|fig7b|table1|table2|fig8|fig9|fig10|fig11|all] [-scale 1.0]
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the paper-vs-measured comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/compiler"
	"repro/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: fig7a fig7b table1 table2 fig8 fig9 fig10 fig11 all")
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = full runs)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of text")
	flag.Parse()

	cfg := harness.DefaultExpConfig()
	cfg.Scale = *scale

	results := map[string]any{}
	run := func(name string, f func() (renderer, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		if *jsonOut {
			results[name] = out
			return
		}
		fmt.Printf("== %s (%.1fs) ==\n%s\n", name, time.Since(start).Seconds(), out.Render())
	}
	defer func() {
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(results); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}()

	run("fig7a", func() (renderer, error) {
		r, err := harness.RunFig7(cfg, compiler.O2)
		return r, err
	})
	run("fig7b", func() (renderer, error) {
		r, err := harness.RunFig7(cfg, compiler.O3)
		return r, err
	})
	run("table1", func() (renderer, error) {
		r, err := harness.RunTable1(cfg)
		return r, err
	})
	run("table2", func() (renderer, error) {
		r, err := harness.RunTable2(cfg)
		return r, err
	})
	run("fig8", func() (renderer, error) {
		r, err := harness.RunSeries(cfg, "art")
		return r, err
	})
	run("fig9", func() (renderer, error) {
		r, err := harness.RunSeries(cfg, "mcf")
		return r, err
	})
	run("fig10", func() (renderer, error) {
		r, err := harness.RunFig10(cfg)
		return r, err
	})
	run("fig11", func() (renderer, error) {
		r, err := harness.RunFig11(cfg)
		return r, err
	})
}

// renderer is any experiment result that can print itself as text.
type renderer interface{ Render() string }
