// adore-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	adore-bench [-exp fig7a|fig7b|table1|table2|fig8|fig9|fig10|fig11|policymatrix|all] [-scale 1.0] [-j 0] [-json]
//	adore-bench -bench mcf [-scale 1.0] -trace out.json [-events out.jsonl]
//	adore-bench ... [-cpuprofile cpu.prof] [-memprofile mem.prof]
//	adore-bench ... [-metrics-addr :8123] [-linger 30s]
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the paper-vs-measured comparison. Sweeps run on the
// experiment engine: -j sets the worker-pool width (0 = all cores,
// 1 = serial), one build cache is shared across all selected experiments,
// and ^C cancels in-flight simulations cleanly.
//
// The second form runs ONE benchmark under ADORE with the observability
// layer on and exports the recorded event stream: -trace writes a Chrome
// trace-event file loadable in Perfetto (ui.perfetto.dev), -events a JSONL
// stream. See DESIGN.md §10.
//
// -metrics-addr serves live telemetry while the sweeps run — Prometheus
// text on /metrics, per-sweep progress JSON on /status, and the Go
// runtime profiler on /debug/pprof — and -linger keeps the endpoint up
// after completion for polling scrapers. See DESIGN.md §15.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"time"

	"repro"
	"repro/cmd/internal/cli"
	"repro/internal/compiler"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/workloads"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: fig7a fig7b table1 table2 fig8 fig9 fig10 fig11 policymatrix all")
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = full runs)")
	jobs := flag.Int("j", 0, "parallel jobs (0 = one per core, 1 = serial)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of text")
	progress := flag.Bool("progress", true, "print live per-job progress to stderr")
	benchName := flag.String("bench", "", "observed-run mode: run this one benchmark under ADORE ("+strings.Join(workloads.Names(), " ")+")")
	traceOut := flag.String("trace", "", "observed-run mode: write a Perfetto-loadable Chrome trace to this file")
	eventsOut := flag.String("events", "", "observed-run mode: write the event stream as JSONL to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /status and /debug/pprof on this address while running (e.g. :8123)")
	linger := flag.Duration("linger", 0, "keep the -metrics-addr endpoint up this long after the sweeps finish")
	fork := flag.Bool("fork", false, "run the policy-matrix sweep on the checkpoint/fork engine (DESIGN.md §16): one warmup probe per (workload, options) group, policy continuations resume from its snapshot")
	forkJSON := flag.String("fork-json", "", "with -fork: write the fork-engine throughput summary as JSON to this file")
	flag.Parse()

	// Host profiling of the simulator itself (DESIGN.md §12): profiles are
	// written on the normal exit paths; a run that dies via cli.Fatal exits
	// the process and leaves no (CPU) or no fresh (heap) profile behind.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		cli.Fatal(err)
		cli.Fatal(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			cli.Fatal(err)
			runtime.GC() // flush unreached garbage so the profile shows live heap
			cli.Fatal(pprof.WriteHeapProfile(f))
			cli.Fatal(f.Close())
		}()
	}

	ctx := cli.Context()

	if *benchName != "" || *traceOut != "" || *eventsOut != "" {
		cli.Fatal(observedRun(ctx, *benchName, *scale, *traceOut, *eventsOut))
		return
	}

	status := serve.NewStatusTracker()
	var jobsDone atomic.Int64
	onProgress := func(p harness.Progress) {
		status.Progress(p)
		if !*progress {
			return
		}
		if p.Done && p.Err == nil {
			fmt.Fprintf(os.Stderr, "  [%3d done] %s %s (%d/%d)\n",
				jobsDone.Add(1), p.Sweep, p.Job, p.Index+1, p.Total)
		}
	}
	var reg *metrics.Registry
	if *metricsAddr != "" {
		reg = metrics.NewRegistry()
		shutdown, err := serveMetrics(ctx, *metricsAddr, reg, status, *linger)
		cli.Fatal(err)
		defer shutdown()
	}
	eng := harness.NewEngine(harness.EngineConfig{Parallelism: *jobs, OnProgress: onProgress, Metrics: reg})

	cfg := harness.DefaultExpConfig()
	cfg.Scale = *scale
	cfg.Engine = eng

	start := time.Now()
	results := map[string]any{}
	elapsed := map[string]float64{}
	matched := 0
	run := func(name string, f func(context.Context) (renderer, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		matched++
		expStart := time.Now()
		out, err := f(ctx)
		if err != nil {
			cli.Fatal(fmt.Errorf("%s: %w", name, err))
		}
		elapsed[name] = time.Since(expStart).Seconds()
		if *jsonOut {
			results[name] = out
			return
		}
		fmt.Printf("== %s (%.1fs) ==\n%s\n", name, elapsed[name], out.Render())
	}

	run("fig7a", func(ctx context.Context) (renderer, error) {
		r, err := harness.RunFig7Context(ctx, cfg, compiler.O2)
		return r, err
	})
	run("fig7b", func(ctx context.Context) (renderer, error) {
		r, err := harness.RunFig7Context(ctx, cfg, compiler.O3)
		return r, err
	})
	run("table1", func(ctx context.Context) (renderer, error) {
		r, err := harness.RunTable1Context(ctx, cfg)
		return r, err
	})
	run("table2", func(ctx context.Context) (renderer, error) {
		r, err := harness.RunTable2Context(ctx, cfg)
		return r, err
	})
	run("fig8", func(ctx context.Context) (renderer, error) {
		r, err := harness.RunSeriesContext(ctx, cfg, "art")
		return r, err
	})
	run("fig9", func(ctx context.Context) (renderer, error) {
		r, err := harness.RunSeriesContext(ctx, cfg, "mcf")
		return r, err
	})
	run("fig10", func(ctx context.Context) (renderer, error) {
		r, err := harness.RunFig10Context(ctx, cfg)
		return r, err
	})
	run("fig11", func(ctx context.Context) (renderer, error) {
		r, err := harness.RunFig11Context(ctx, cfg)
		return r, err
	})
	var forkStats *harness.ForkStats
	run("policymatrix", func(ctx context.Context) (renderer, error) {
		if !*fork {
			r, err := harness.RunPolicyMatrixContext(ctx, cfg)
			return r, err
		}
		r, stats, err := harness.RunPolicyMatrixForkedContext(ctx, cfg)
		forkStats = stats
		return r, err
	})

	if matched == 0 {
		cli.Fatal(fmt.Errorf("unknown experiment %q (want fig7a fig7b table1 table2 fig8 fig9 fig10 fig11 policymatrix all)", *exp))
	}

	if forkStats != nil {
		if *forkJSON != "" {
			cli.Fatal(writeForkJSON(*forkJSON, *scale, forkStats))
		}
		if !*jsonOut {
			fmt.Printf("fork engine: %d groups, %d forked runs, %d straight runs, warmup %d -> %d cycles (%.1fx reduction)\n",
				forkStats.Groups, forkStats.ForkedRuns, forkStats.StraightRuns,
				forkStats.WarmupStraight, forkStats.WarmupForked, forkStats.WarmupReduction())
		}
	}

	hits, misses := eng.Cache().Stats()
	rhits, rmisses := eng.Results().Stats()
	obsDropped, samplesDropped := reportDrops(eng)
	if *jsonOut {
		if forkStats != nil {
			results["_fork"] = forkSummary(*scale, forkStats)
		}
		results["_meta"] = map[string]any{
			"scale":              *scale,
			"parallelism":        eng.Parallelism(),
			"policies":           adore.Policies(),
			"build_cache_hits":   hits,
			"build_cache_miss":   misses,
			"result_cache_hits":  rhits,
			"result_cache_miss":  rmisses,
			"obs_events_dropped": obsDropped,
			"samples_dropped":    samplesDropped,
			"elapsed_seconds":    elapsed,
			"total_seconds":      time.Since(start).Seconds(),
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		cli.Fatal(enc.Encode(results))
		return
	}
	fmt.Printf("engine: %d workers, %d compiles (%d reused from cache), %d runs (%d reused), %.1fs total\n",
		eng.Parallelism(), misses, hits, rmisses, rhits, time.Since(start).Seconds())
}

// renderer is any experiment result that can print itself as text.
type renderer interface{ Render() string }

// forkSummary shapes one forked sweep's throughput numbers for JSON
// output, with the methodology the numbers are only meaningful under.
func forkSummary(scale float64, s *harness.ForkStats) map[string]any {
	return map[string]any{
		"experiment":             "policymatrix",
		"scale":                  scale,
		"groups":                 s.Groups,
		"forked_runs":            s.ForkedRuns,
		"straight_runs":          s.StraightRuns,
		"warmup_cycles_straight": s.WarmupStraight,
		"warmup_cycles_forked":   s.WarmupForked,
		"warmup_reduction":       s.WarmupReduction(),
		"methodology": []string{
			"The policy-matrix sweep runs every workload x {O2,O3} pair under each prefetch-policy column; all ADORE columns of one pair execute an identical simulation prefix up to the run's first policy-dependent decision.",
			"A fork group is the set of ADORE jobs sharing a compile key and a policy-neutral config fingerprint; its first member runs as the probe, capturing a whole-machine snapshot (CPU, memory, caches, MSHRs, PMU, controller, code image) at the policy-divergence point.",
			"warmup_cycles_straight is what a non-forked sweep simulates for the grouped jobs' shared prefixes: group members x snapshot cycle, summed over groups that captured a snapshot.",
			"warmup_cycles_forked is what the forked sweep simulated for the same work: each group's snapshot cycle once. warmup_reduction is their ratio.",
			"Groups whose probe never reached a snapshot-worthy boundary (e.g. no stable phase at this scale) fall back to straight runs and are excluded from both warmup totals.",
			"Forked results are bit-identical to straight runs; TestForkPolicyMatrixBitIdentical asserts the full matrix JSON byte-for-byte.",
		},
	}
}

// writeForkJSON writes the fork-engine summary (BENCH_fork.json).
func writeForkJSON(path string, scale float64, s *harness.ForkStats) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(forkSummary(scale, s)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// observedRun executes one benchmark under ADORE with the observability
// layer enabled and exports the recorded stream.
func observedRun(ctx context.Context, name string, scale float64, tracePath, eventsPath string) error {
	if name == "" {
		name = "mcf"
	}
	bench, err := adore.Benchmark(name, scale)
	if err != nil {
		return err
	}
	build, err := adore.Compile(bench.Kernel, adore.CompileOptions())
	if err != nil {
		return err
	}
	res, err := adore.RunContext(ctx, build, adore.WithObserve(adore.WithADORE(adore.RunOptions())))
	if err != nil {
		return err
	}

	fmt.Printf("%s: %d cycles, %d instructions (CPI %.3f)\n",
		bench.Name, res.CPU.Cycles, res.CPU.Retired, res.CPU.CPI())
	if s := res.CPIStack; s != nil {
		t := float64(s.Total())
		fmt.Printf("cpi stack: busy %.1f%%, load-stall %.1f%%, flush %.1f%%, fetch %.1f%%\n",
			100*float64(s.Busy)/t, 100*float64(s.LoadStall)/t, 100*float64(s.Flush)/t, 100*float64(s.Fetch)/t)
	}
	if res.Obs != nil {
		fmt.Printf("events: %d recorded, %d dropped\n", len(res.Obs.Events), res.Obs.Dropped)
		if res.Obs.Dropped > 0 {
			fmt.Fprintf(os.Stderr, "warning: %d observability events dropped (ring overwrites); the exported stream is incomplete\n", res.Obs.Dropped)
		}
	}
	pf := res.Mem.Prefetch()
	fmt.Printf("prefetch: %d issued, %d useful, %d late, %d evicted unused\n",
		pf.Issued, pf.Useful, pf.Late, pf.EvictedUnused)

	write := func(path string, render func(*os.File) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := render(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(tracePath, func(f *os.File) error { return adore.WriteChromeTrace(f, res.Obs) }); err != nil {
		return err
	}
	if tracePath != "" {
		fmt.Printf("wrote %s (load in ui.perfetto.dev)\n", tracePath)
	}
	if err := write(eventsPath, func(f *os.File) error { return adore.WriteEventsJSONL(f, res.Obs) }); err != nil {
		return err
	}
	if eventsPath != "" {
		fmt.Printf("wrote %s\n", eventsPath)
	}
	return nil
}
