// adore-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	adore-bench [-exp fig7a|fig7b|table1|table2|fig8|fig9|fig10|fig11|all] [-scale 1.0] [-j 0] [-json]
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the paper-vs-measured comparison. Sweeps run on the
// experiment engine: -j sets the worker-pool width (0 = all cores,
// 1 = serial), one build cache is shared across all selected experiments,
// and ^C cancels in-flight simulations cleanly.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"repro/cmd/internal/cli"
	"repro/internal/compiler"
	"repro/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: fig7a fig7b table1 table2 fig8 fig9 fig10 fig11 all")
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = full runs)")
	jobs := flag.Int("j", 0, "parallel jobs (0 = one per core, 1 = serial)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of text")
	progress := flag.Bool("progress", true, "print live per-job progress to stderr")
	flag.Parse()

	ctx := cli.Context()

	var jobsDone atomic.Int64
	onProgress := func(p harness.Progress) {
		if !*progress {
			return
		}
		if p.Done && p.Err == nil {
			fmt.Fprintf(os.Stderr, "  [%3d done] %s %s (%d/%d)\n",
				jobsDone.Add(1), p.Sweep, p.Job, p.Index+1, p.Total)
		}
	}
	eng := harness.NewEngine(harness.EngineConfig{Parallelism: *jobs, OnProgress: onProgress})

	cfg := harness.DefaultExpConfig()
	cfg.Scale = *scale
	cfg.Engine = eng

	start := time.Now()
	results := map[string]any{}
	elapsed := map[string]float64{}
	matched := 0
	run := func(name string, f func(context.Context) (renderer, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		matched++
		expStart := time.Now()
		out, err := f(ctx)
		if err != nil {
			cli.Fatal(fmt.Errorf("%s: %w", name, err))
		}
		elapsed[name] = time.Since(expStart).Seconds()
		if *jsonOut {
			results[name] = out
			return
		}
		fmt.Printf("== %s (%.1fs) ==\n%s\n", name, elapsed[name], out.Render())
	}

	run("fig7a", func(ctx context.Context) (renderer, error) {
		r, err := harness.RunFig7Context(ctx, cfg, compiler.O2)
		return r, err
	})
	run("fig7b", func(ctx context.Context) (renderer, error) {
		r, err := harness.RunFig7Context(ctx, cfg, compiler.O3)
		return r, err
	})
	run("table1", func(ctx context.Context) (renderer, error) {
		r, err := harness.RunTable1Context(ctx, cfg)
		return r, err
	})
	run("table2", func(ctx context.Context) (renderer, error) {
		r, err := harness.RunTable2Context(ctx, cfg)
		return r, err
	})
	run("fig8", func(ctx context.Context) (renderer, error) {
		r, err := harness.RunSeriesContext(ctx, cfg, "art")
		return r, err
	})
	run("fig9", func(ctx context.Context) (renderer, error) {
		r, err := harness.RunSeriesContext(ctx, cfg, "mcf")
		return r, err
	})
	run("fig10", func(ctx context.Context) (renderer, error) {
		r, err := harness.RunFig10Context(ctx, cfg)
		return r, err
	})
	run("fig11", func(ctx context.Context) (renderer, error) {
		r, err := harness.RunFig11Context(ctx, cfg)
		return r, err
	})

	if matched == 0 {
		cli.Fatal(fmt.Errorf("unknown experiment %q (want fig7a fig7b table1 table2 fig8 fig9 fig10 fig11 all)", *exp))
	}

	hits, misses := eng.Cache().Stats()
	if *jsonOut {
		results["_meta"] = map[string]any{
			"scale":            *scale,
			"parallelism":      eng.Parallelism(),
			"build_cache_hits": hits,
			"build_cache_miss": misses,
			"elapsed_seconds":  elapsed,
			"total_seconds":    time.Since(start).Seconds(),
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		cli.Fatal(enc.Encode(results))
		return
	}
	fmt.Printf("engine: %d workers, %d compiles (%d reused from cache), %.1fs total\n",
		eng.Parallelism(), misses, hits, time.Since(start).Seconds())
}

// renderer is any experiment result that can print itself as text.
type renderer interface{ Render() string }
