package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/serve"
)

// The -metrics-addr observability endpoint: while a sweep runs,
// adore-bench serves
//
//	/metrics       Prometheus text exposition (?format=json for JSON)
//	/status        per-sweep job progress as JSON
//	/debug/pprof/  the Go runtime's profiler, for the simulator itself
//
// so a long regeneration of the paper's tables can be watched (and the
// host process profiled) without interrupting it. -linger keeps the
// endpoint up after the sweeps finish, for scrapers that poll — CI smoke
// uses it to validate the endpoint after a short run.

// serveMetrics starts the observability endpoint on addr and returns a
// shutdown func that (after the linger grace, cut short if ctx fires)
// drains the server gracefully. The listener is bound synchronously so
// the endpoint is scrapeable — and the bound address printed — before any
// sweep starts. The server carries the hardened timeouts (serve.Hardened)
// and a Serve failure is logged instead of discarded.
func serveMetrics(ctx context.Context, addr string, reg *metrics.Registry, status *serve.StatusTracker, linger time.Duration) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("-metrics-addr %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler(reg))
	mux.Handle("/status", status)
	// The pprof handlers normally self-register on DefaultServeMux at
	// import; wiring them explicitly keeps this mux self-contained.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := serve.Hardened(mux)
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "warning: -metrics-addr endpoint died: %v\n", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "serving /metrics, /status, /debug/pprof on http://%s\n", ln.Addr())

	return func() {
		if linger > 0 {
			fmt.Fprintf(os.Stderr, "sweeps done; serving for another %v (-linger)\n", linger)
			select {
			case <-time.After(linger):
			case <-ctx.Done():
				// ^C during the linger: stop waiting, start draining.
			}
		}
		// Graceful drain with a bounded deadline, so an in-flight scrape
		// finishes but a stuck connection cannot wedge process exit.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			srv.Close()
		}
	}, nil
}

// reportDrops surfaces the engine's loss signals on stderr. Nonzero drops
// mean a recorded stream is incomplete — loud, but not fatal: the
// simulated results themselves are unaffected.
func reportDrops(eng *harness.Engine) (obsDropped, samplesDropped uint64) {
	obsDropped, samplesDropped = eng.Drops()
	if obsDropped > 0 {
		fmt.Fprintf(os.Stderr, "warning: %d observability events dropped (ring overwrites); raise ObserveCapacity\n", obsDropped)
	}
	if samplesDropped > 0 {
		fmt.Fprintf(os.Stderr, "warning: %d PMU samples dropped (unhandled SSB overflows)\n", samplesDropped)
	}
	return obsDropped, samplesDropped
}
