package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/metrics"
)

// The -metrics-addr observability endpoint: while a sweep runs,
// adore-bench serves
//
//	/metrics       Prometheus text exposition (?format=json for JSON)
//	/status        per-sweep job progress as JSON
//	/debug/pprof/  the Go runtime's profiler, for the simulator itself
//
// so a long regeneration of the paper's tables can be watched (and the
// host process profiled) without interrupting it. -linger keeps the
// endpoint up after the sweeps finish, for scrapers that poll — CI smoke
// uses it to validate the endpoint after a short run.

// statusTracker folds engine progress callbacks into the /status document.
type statusTracker struct {
	mu     sync.Mutex
	start  time.Time
	sweeps map[string]*sweepStatus
}

type sweepStatus struct {
	Total   int      `json:"total"`
	Started int      `json:"started"`
	Done    int      `json:"done"`
	Failed  int      `json:"failed"`
	Running []string `json:"running,omitempty"`
}

func newStatusTracker() *statusTracker {
	return &statusTracker{start: time.Now(), sweeps: map[string]*sweepStatus{}}
}

// Progress observes one engine event; safe for concurrent use (the engine
// calls it from worker goroutines).
func (t *statusTracker) Progress(p harness.Progress) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.sweeps[p.Sweep]
	if s == nil {
		s = &sweepStatus{}
		t.sweeps[p.Sweep] = s
	}
	s.Total = p.Total
	if !p.Done {
		s.Started++
		s.Running = append(s.Running, p.Job)
		return
	}
	if p.Err != nil {
		s.Failed++
	} else {
		s.Done++
	}
	for i, name := range s.Running {
		if name == p.Job {
			s.Running = append(s.Running[:i], s.Running[i+1:]...)
			break
		}
	}
}

// ServeHTTP renders the tracker as the /status JSON document.
func (t *statusTracker) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	t.mu.Lock()
	names := make([]string, 0, len(t.sweeps))
	for name := range t.sweeps {
		names = append(names, name)
	}
	sort.Strings(names)
	type entry struct {
		Sweep string `json:"sweep"`
		sweepStatus
	}
	doc := struct {
		UptimeSeconds float64 `json:"uptime_seconds"`
		Sweeps        []entry `json:"sweeps"`
	}{UptimeSeconds: time.Since(t.start).Seconds()}
	for _, name := range names {
		s := *t.sweeps[name]
		s.Running = append([]string(nil), s.Running...)
		doc.Sweeps = append(doc.Sweeps, entry{Sweep: name, sweepStatus: s})
	}
	t.mu.Unlock()

	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

// serveMetrics starts the observability endpoint on addr and returns a
// shutdown func that (after the linger grace) closes the listener. The
// listener is bound synchronously so the endpoint is scrapeable — and the
// bound address printed — before any sweep starts.
func serveMetrics(addr string, reg *metrics.Registry, status *statusTracker, linger time.Duration) (func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("-metrics-addr %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler(reg))
	mux.Handle("/status", status)
	// The pprof handlers normally self-register on DefaultServeMux at
	// import; wiring them explicitly keeps this mux self-contained.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	fmt.Fprintf(os.Stderr, "serving /metrics, /status, /debug/pprof on http://%s\n", ln.Addr())

	return func() {
		if linger > 0 {
			fmt.Fprintf(os.Stderr, "sweeps done; serving for another %v (-linger)\n", linger)
			time.Sleep(linger)
		}
		srv.Close()
	}, nil
}

// reportDrops surfaces the engine's loss signals on stderr. Nonzero drops
// mean a recorded stream is incomplete — loud, but not fatal: the
// simulated results themselves are unaffected.
func reportDrops(eng *harness.Engine) (obsDropped, samplesDropped uint64) {
	obsDropped, samplesDropped = eng.Drops()
	if obsDropped > 0 {
		fmt.Fprintf(os.Stderr, "warning: %d observability events dropped (ring overwrites); raise ObserveCapacity\n", obsDropped)
	}
	if samplesDropped > 0 {
		fmt.Fprintf(os.Stderr, "warning: %d PMU samples dropped (unhandled SSB overflows)\n", samplesDropped)
	}
	return obsDropped, samplesDropped
}
