// adore-run executes one of the SPEC2000-like workloads on the simulated
// machine, with or without the ADORE dynamic optimizer.
//
// Usage:
//
//	adore-run -bench mcf [-O3] [-adore] [-swp] [-noreserve] [-scale 1.0] [-series]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/cmd/internal/cli"
	"repro/internal/program"
	"repro/internal/workloads"
)

func main() {
	name := flag.String("bench", "mcf", "benchmark: "+strings.Join(workloads.Names(), " "))
	o3 := flag.Bool("O3", false, "compile at O3 (static prefetching)")
	runADORE := flag.Bool("adore", false, "attach the ADORE dynamic optimizer")
	policy := flag.String("policy", "", "prefetch policy (implies -adore): "+strings.Join(adore.Policies(), " "))
	selector := flag.Bool("selector", false, "pick the prefetch policy at runtime per phase (implies -adore)")
	swp := flag.Bool("swp", false, "enable software pipelining")
	noReserve := flag.Bool("noreserve", false, "do not reserve r27-r30/p6")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	series := flag.Bool("series", false, "print the per-window CPI/DEAR series")
	save := flag.String("save", "", "write the compiled image to this file (binary ADORE image format)")
	disasm := flag.Bool("disasm", false, "print the compiled image's disassembly and exit")
	flag.Parse()

	bench, err := adore.Benchmark(*name, *scale)
	fatal(err)

	opts := adore.CompileOptions()
	if *o3 {
		opts.Level = adore.O3
	}
	opts.SWP = *swp
	opts.ReserveRegs = !*noReserve
	build, err := adore.Compile(bench.Kernel, opts)
	fatal(err)

	if *save != "" {
		f, err := os.Create(*save)
		fatal(err)
		fatal(program.EncodeImage(f, build.Image))
		fatal(f.Close())
		fmt.Printf("wrote %s (%d bundles)\n", *save, build.Image.BundleCount)
	}
	if *disasm {
		fmt.Print(program.Listing(build.Image.Code))
		return
	}

	rc := adore.RunOptions()
	if *policy != "" || *selector {
		*runADORE = true
	}
	if *runADORE {
		rc = adore.WithADORE(rc)
		if *policy != "" {
			rc = adore.WithPolicy(rc, *policy)
		}
		if *selector {
			rc = adore.WithSelector(rc)
		}
	} else if *series {
		rc.SampleOnly = true
		rc.Core = adore.DefaultConfig()
	}
	rc.RecordSeries = *series
	res, err := adore.RunContext(cli.Context(), build, rc)
	fatal(err)

	fmt.Printf("%s (%s, %s%s%s):\n", bench.Name, bench.Class, opts.Level,
		flagStr(*swp, "+swp"), flagStr(*runADORE, "+adore"))
	fmt.Printf("  cycles:        %d\n", res.CPU.Cycles)
	fmt.Printf("  instructions:  %d (CPI %.3f)\n", res.CPU.Retired, res.CPU.CPI())
	fmt.Printf("  loads/stores:  %d/%d, prefetches %d\n", res.CPU.Loads, res.CPU.Stores, res.CPU.Prefetches)
	fmt.Printf("  load stalls:   %d cycles, I-cache stalls %d\n", res.CPU.LoadStalls, res.CPU.ICacheStalls)
	fmt.Printf("  L1D misses:    %d  L2 misses: %d  L3 misses: %d\n",
		res.Mem.L1D.Stats.Misses, res.Mem.L2.Stats.Misses, res.Mem.L3.Stats.Misses)
	if res.Core != nil {
		s := res.Core
		fmt.Printf("  ADORE (policy %s): %d phases optimized, %d traces patched\n",
			rc.Core.PolicyKey(), s.PhasesOptimized, s.TracesPatched)
		if rc.Core.Selector {
			fmt.Printf("         selector: %d decisions, %d fallbacks\n",
				s.PolicySelections, s.PolicySwitches)
		}
		fmt.Printf("         prefetches inserted: %d direct, %d indirect, %d pointer-chasing\n",
			s.DirectPrefetches, s.IndirectPrefetches, s.PointerPrefetches)
		fmt.Printf("         windows %d, phase changes %d, analysis failures %d\n",
			s.WindowsObserved, s.PhaseChanges, s.AnalysisFailures)
	}
	if *series {
		fmt.Println("  window series (cycle, CPI, DEAR/1000 inst):")
		step := len(res.Series)/30 + 1
		for i := 0; i < len(res.Series); i += step {
			p := res.Series[i]
			fmt.Printf("    %12d  %6.2f  %6.2f\n", p.Cycle, p.CPI, p.DearPerK)
		}
	}
}

func flagStr(on bool, s string) string {
	if on {
		return s
	}
	return ""
}

func fatal(err error) { cli.Fatal(err) }
