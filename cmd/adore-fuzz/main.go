// adore-fuzz drives the differential-correctness harness from the command
// line: it generates constrained random programs (internal/progfuzz), runs
// each through the reference oracle and the full machine — plain and with
// the ADORE optimizer attached — and reports any divergence. CI uses it for
// a deterministic ≥500-program smoke sweep; developers point it at a saved
// input to replay a reproducer.
//
// Usage:
//
//	adore-fuzz [-n 500] [-seed 1] [-adore] [-v] [-out dir]
//	adore-fuzz -replay file
//
// Exit status is non-zero if any program diverges; the failing input is
// written under -out as a Go fuzz corpus file, ready to drop into
// internal/progfuzz/testdata/fuzz/FuzzDifferential/.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/cmd/internal/cli"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/pmu"
	"repro/internal/progfuzz"
	"repro/internal/program"
	"repro/internal/verify"
)

func main() {
	var (
		n      = flag.Int("n", 500, "number of random programs to check")
		seed   = flag.Int64("seed", 1, "PRNG seed for program generation")
		adore  = flag.Bool("adore", true, "also run each program with the runtime optimizer attached")
		maxIn  = flag.Int("bytes", 256, "maximum generator input length")
		out    = flag.String("out", "", "directory for failing-input corpus files (default: temp dir)")
		replay = flag.String("replay", "", "replay one corpus file instead of generating")
		verb   = flag.Bool("v", false, "log every program")
	)
	flag.Parse()
	ctx := cli.Context()

	if *replay != "" {
		data, err := os.ReadFile(*replay)
		cli.Fatal(err)
		if body, ok := parseCorpusFile(data); ok {
			data = body
		}
		rep, err := check(ctx, data, *adore)
		cli.Fatal(err)
		if rep != "" {
			fmt.Println(rep)
			os.Exit(1)
		}
		fmt.Println("replay: ok")
		return
	}

	rng := rand.New(rand.NewSource(*seed))
	start := time.Now()
	divergences := 0
	for i := 0; i < *n; i++ {
		if ctx.Err() != nil {
			cli.Fatal(ctx.Err())
		}
		data := make([]byte, rng.Intn(*maxIn))
		rng.Read(data)
		rep, err := check(ctx, data, *adore)
		cli.Fatal(err)
		if *verb {
			fmt.Printf("program %d: %d bytes, %s\n", i, len(data), statusOf(rep))
		}
		if rep != "" {
			divergences++
			fmt.Fprintf(os.Stderr, "program %d DIVERGED:\n%s\n", i, rep)
			path, err := writeCorpusFile(*out, data)
			if err != nil {
				fmt.Fprintln(os.Stderr, "could not save reproducer:", err)
			} else {
				fmt.Fprintln(os.Stderr, "reproducer saved to", path)
			}
		}
	}
	fmt.Printf("adore-fuzz: %d programs, %d divergences, %s\n", *n, divergences, time.Since(start).Round(time.Millisecond))
	if divergences > 0 {
		os.Exit(1)
	}
}

func statusOf(rep string) string {
	if rep == "" {
		return "ok"
	}
	return "DIVERGED"
}

// fuzzCore mirrors the scaled-down ADORE parameters of the fuzz tests.
func fuzzCore() core.Config {
	cfg := core.DefaultConfig()
	cfg.Sampling = pmu.Config{SampleInterval: 2000, SSBSize: 64, DearLatencyMin: 8, HandlerCyclesPerSample: 30}
	cfg.W = 8
	cfg.PollInterval = 20_000
	cfg.StableWindows = 3
	return cfg
}

// check runs one generated program through every differential leg and
// returns a non-empty report if the engines disagree.
func check(ctx context.Context, data []byte, adore bool) (string, error) {
	p, err := progfuzz.Generate(data)
	if err != nil {
		return "", err
	}
	if fs := verify.CheckImage(p.Image, verify.Options{ReservedRegsUnused: true}); len(fs) != 0 {
		return fmt.Sprintf("generated program has verifier findings: %v\nlisting:\n%s",
			fs, program.Listing(p.Image.Code)), nil
	}
	or, err := harness.RunOracle(p.Image, 4_000_000)
	if err != nil {
		return "", err
	}

	cfg := harness.DefaultRunConfig()
	cfg.MaxInsts = 4_000_000
	rep, err := harness.DiffAgainstContext(ctx, or, p.Image, cfg)
	if err != nil {
		return "", err
	}
	if rep.Failed() {
		return rep.String(), nil
	}
	if adore {
		cfg.ADORE = true
		cfg.Core = fuzzCore()
		// Sample a prefetch policy (or the selector) from the input bytes,
		// mirroring FuzzDifferential: replaying a corpus file replays its
		// policy too.
		cfg.Core.Policy, cfg.Core.Selector = progfuzz.PolicyFromInput(data)
		rep, err = harness.DiffAgainstContext(ctx, or, p.Image, cfg)
		if err != nil {
			return "", err
		}
		if rep.Failed() {
			pol := cfg.Core.PolicyKey()
			return fmt.Sprintf("with ADORE (policy %s): %s", pol, rep.String()), nil
		}
	}
	return "", nil
}

// writeCorpusFile saves data in the Go fuzz corpus encoding so the file can
// be checked straight into testdata/fuzz/FuzzDifferential/.
func writeCorpusFile(dir string, data []byte) (string, error) {
	if dir == "" {
		dir = os.TempDir()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("diverge-%d", time.Now().UnixNano())
	path := filepath.Join(dir, name)
	content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
	return path, os.WriteFile(path, []byte(content), 0o644)
}

// parseCorpusFile extracts the []byte literal from a Go fuzz corpus file;
// raw files fall through untouched.
func parseCorpusFile(data []byte) ([]byte, bool) {
	const header = "go test fuzz v1\n[]byte("
	s := string(data)
	if len(s) < len(header) || s[:len(header)] != header {
		return nil, false
	}
	rest := s[len(header):]
	end := len(rest) - 1
	for end >= 0 && (rest[end] == '\n' || rest[end] == ')') {
		end--
	}
	body, err := strconv.Unquote(rest[:end+1])
	if err != nil {
		return nil, false
	}
	return []byte(body), true
}
