// adore-load drives an adore-serve instance with a deterministic, seeded,
// Zipf-distributed request stream and reports latency percentiles, RPS,
// and cache effectiveness.
//
// Usage:
//
//	adore-load [-addr http://localhost:8124] [-mode run|sweep] [-n 200]
//	           [-duration 0] [-c 4] [-seed 1] [-zipf 1.2] [-scale 0.02]
//	           [-max-insts 200000] [-out summary.json]
//
// The request universe is every (workload, policy-column) pair in run
// mode, or every workload in sweep mode; a seeded Zipf draw picks which
// request each slot in the stream repeats, so the stream skews hot the
// way real query mixes do — the first occurrence of a document is a cold
// simulation, every repeat should be a byte-identical cache hit. The
// summary separates hit/miss latency populations (cold vs cached
// service), and verifies byte-identity of repeats by fingerprint.
// Deterministic by construction: same seed, same stream.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/cmd/internal/cli"
	"repro/internal/harness"
	"repro/internal/workloads"
)

type request struct {
	path string
	body []byte
}

// universe builds the distinct request documents the Zipf draw ranks.
// Rank order is deterministic: workloads in registry order, columns in
// policy-matrix order.
func universe(mode string, scale float64, maxInsts uint64) ([]request, error) {
	var out []request
	add := func(path string, doc any) error {
		b, err := json.Marshal(doc)
		if err != nil {
			return err
		}
		out = append(out, request{path: path, body: b})
		return nil
	}
	for _, name := range workloads.Names() {
		if mode == "sweep" {
			err := add("/sweep", map[string]any{
				"workload": name, "scale": scale, "max_insts": maxInsts,
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		for _, col := range harness.PolicyColumns() {
			doc := map[string]any{"workload": name, "scale": scale, "max_insts": maxInsts}
			switch col {
			case harness.PolicyBaseColumn:
			case harness.PolicySelectorColumn:
				doc["selector"] = true
			default:
				doc["policy"] = col
			}
			if err := add("/run", doc); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// percentile reads the p-th percentile (nearest-rank) from sorted ns.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p/100*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

type latencySummary struct {
	Count int     `json:"count"`
	P50ms float64 `json:"p50_ms"`
	P99ms float64 `json:"p99_ms"`
}

func summarize(ms []float64) latencySummary {
	sort.Float64s(ms)
	return latencySummary{Count: len(ms), P50ms: percentile(ms, 50), P99ms: percentile(ms, 99)}
}

type summary struct {
	Mode            string         `json:"mode"`
	Seed            int64          `json:"seed"`
	Zipf            float64        `json:"zipf_s"`
	Universe        int            `json:"universe"`
	Requests        int            `json:"requests"`
	Errors          int            `json:"errors"`
	Hits            int            `json:"hits"`
	Misses          int            `json:"misses"`
	ByteIdentical   bool           `json:"byte_identical"`
	DurationSeconds float64        `json:"duration_seconds"`
	RPS             float64        `json:"rps"`
	Overall         latencySummary `json:"latency_overall"`
	Hit             latencySummary `json:"latency_hit"`
	Miss            latencySummary `json:"latency_miss"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8124", "adore-serve base URL")
	mode := flag.String("mode", "run", "request mode: run (per-policy /run) or sweep (fork-grouped /sweep)")
	n := flag.Int("n", 200, "number of requests to issue")
	duration := flag.Duration("duration", 0, "stop after this long even if -n requests have not been issued (0 = no limit)")
	conc := flag.Int("c", 4, "concurrent in-flight requests")
	seed := flag.Int64("seed", 1, "PRNG seed; same seed, same request stream")
	zipfS := flag.Float64("zipf", 1.2, "Zipf skew s (>1); higher = hotter hot keys")
	scale := flag.Float64("scale", 0.02, "workload scale factor of generated requests")
	maxInsts := flag.Uint64("max-insts", 0, "instruction cap of generated requests (0 = engine default; a too-low cap fails runs that need more)")
	out := flag.String("out", "", "also write the JSON summary to this file")
	flag.Parse()

	if *mode != "run" && *mode != "sweep" {
		cli.Fatal(fmt.Errorf("unknown -mode %q (want run or sweep)", *mode))
	}
	uni, err := universe(*mode, *scale, *maxInsts)
	cli.Fatal(err)

	// The whole stream is drawn up front so concurrency cannot perturb
	// determinism: request i is the same document for any -c.
	rng := rand.New(rand.NewSource(*seed))
	zipf := rand.NewZipf(rng, *zipfS, 1, uint64(len(uni)-1))
	stream := make([]int, *n)
	for i := range stream {
		stream[i] = int(zipf.Uint64())
	}

	ctx := cli.Context()
	client := &http.Client{Timeout: 15 * time.Minute}
	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}

	var (
		mu        sync.Mutex
		hitMS     []float64
		missMS    []float64
		errors    int
		issued    int
		bodies    = map[string][32]byte{} // fingerprint -> body hash
		identical = true
	)
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				r := uni[stream[i]]
				start := time.Now()
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, *addr+r.path, bytes.NewReader(r.body))
				if err == nil {
					req.Header.Set("Content-Type", "application/json")
					var resp *http.Response
					resp, err = client.Do(req)
					if err == nil {
						body, rerr := io.ReadAll(resp.Body)
						resp.Body.Close()
						elapsed := float64(time.Since(start).Microseconds()) / 1000
						mu.Lock()
						issued++
						if rerr != nil || resp.StatusCode != http.StatusOK {
							errors++
						} else {
							fp := resp.Header.Get("X-Adore-Fingerprint")
							sum := sha256.Sum256(body)
							if prev, ok := bodies[fp]; ok {
								if prev != sum {
									identical = false
								}
							} else {
								bodies[fp] = sum
							}
							if resp.Header.Get("X-Adore-Cache") == "hit" {
								hitMS = append(hitMS, elapsed)
							} else {
								missMS = append(missMS, elapsed)
							}
						}
						mu.Unlock()
						continue
					}
				}
				mu.Lock()
				issued++
				if ctx.Err() == nil {
					errors++
				}
				mu.Unlock()
			}
		}()
	}

	start := time.Now()
	for i := range stream {
		if ctx.Err() != nil || (!deadline.IsZero() && time.Now().After(deadline)) {
			break
		}
		work <- i
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	all := append(append([]float64{}, hitMS...), missMS...)
	s := summary{
		Mode: *mode, Seed: *seed, Zipf: *zipfS, Universe: len(uni),
		Requests: issued, Errors: errors,
		Hits: len(hitMS), Misses: len(missMS),
		ByteIdentical:   identical,
		DurationSeconds: elapsed.Seconds(),
		RPS:             float64(issued) / elapsed.Seconds(),
		Overall:         summarize(all),
		Hit:             summarize(hitMS),
		Miss:            summarize(missMS),
	}
	b, err := json.MarshalIndent(s, "", "  ")
	cli.Fatal(err)
	b = append(b, '\n')
	os.Stdout.Write(b)
	if *out != "" {
		cli.Fatal(os.WriteFile(*out, b, 0o644))
	}
	if errors > 0 {
		cli.Fatal(fmt.Errorf("adore-load: %d/%d requests failed", errors, issued))
	}
	if !identical {
		cli.Fatal(fmt.Errorf("adore-load: cache hits were not byte-identical to cold responses"))
	}
}
