// adore-profile collects a cache-miss sampling profile of a workload (the
// Table 1 training run), prints the per-loop miss latency breakdown, and
// shows which loops a profile-guided recompilation would keep.
//
// Usage:
//
//	adore-profile -bench gcc [-scale 1.0] [-cover 0.98]
//	adore-profile -bench mcf -timeline
//
// With -timeline the workload instead runs under ADORE with the
// observability layer on, and the recorded event stream prints as a
// per-window text timeline (windows, CPI-stack shares, prefetch deltas,
// phase/patch events).
package main

import (
	"flag"
	"fmt"
	"sort"
	"strings"

	"repro"
	"repro/cmd/internal/cli"
	"repro/internal/harness"
	"repro/internal/workloads"
)

func main() {
	name := flag.String("bench", "gcc", "benchmark: "+strings.Join(workloads.Names(), " "))
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	timeline := flag.Bool("timeline", false, "run under ADORE with observability and print the event timeline")
	flag.Parse()

	bench, err := adore.Benchmark(*name, *scale)
	fatal(err)
	build, err := adore.Compile(bench.Kernel, adore.CompileOptions())
	fatal(err)

	if *timeline {
		res, err := adore.RunContext(cli.Context(), build,
			adore.WithObserve(adore.WithADORE(adore.RunOptions())))
		fatal(err)
		fmt.Print(adore.Timeline(res.Obs))
		return
	}

	rc := adore.RunOptions()
	rc.Core = adore.DefaultConfig()
	pr, err := harness.RunProfiledContext(cli.Context(), build, rc)
	fatal(err)

	type agg struct {
		loop   string
		id     int
		pfable bool
		events int
		lat    uint64
	}
	perLoop := map[int]*agg{}
	var total uint64
	outside := 0
	for _, ev := range pr.DearEvents {
		l, ok := build.Image.LoopAt(ev.PC)
		if !ok {
			outside++
			continue
		}
		a := perLoop[l.ID]
		if a == nil {
			a = &agg{loop: l.Name, id: l.ID, pfable: l.Prefetchable}
			perLoop[l.ID] = a
		}
		a.events++
		a.lat += uint64(ev.Latency)
		total += uint64(ev.Latency)
	}
	rows := make([]*agg, 0, len(perLoop))
	for _, a := range perLoop {
		rows = append(rows, a)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].lat > rows[j].lat })

	fmt.Printf("miss profile of %s: %d DEAR events, %d outside loops\n",
		bench.Name, len(pr.DearEvents), outside)
	fmt.Printf("%-4s %-16s %12s %14s %8s %12s\n", "id", "loop", "events", "total latency", "share", "prefetchable")
	for _, a := range rows {
		fmt.Printf("%-4d %-16s %12d %14d %7.1f%% %12v\n",
			a.id, a.loop, a.events, a.lat, 100*float64(a.lat)/float64(total), a.pfable)
	}
}

func fatal(err error) { cli.Fatal(err) }
