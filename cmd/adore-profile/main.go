// adore-profile collects a cache-miss sampling profile of a workload (the
// Table 1 training run), prints the per-loop miss latency breakdown, and
// shows which loops a profile-guided recompilation would keep.
//
// Usage:
//
//	adore-profile -bench gcc [-scale 1.0] [-cover 0.98]
//	adore-profile -bench mcf -timeline
//	adore-profile -bench mcf -annotate [-adore] [-sample-every 4093]
//	adore-profile -bench mcf -profile sim.pb.gz   # then: go tool pprof -top sim.pb.gz
//
// With -timeline the workload instead runs under ADORE with the
// observability layer on, and the recorded event stream prints as a
// per-window text timeline (windows, CPI-stack shares, prefetch deltas,
// phase/patch events).
//
// With -annotate or -profile the workload runs under the simulated-execution
// profiler (cycle sampling on the simulated clock; DESIGN.md §15):
// -annotate prints a perf-annotate-style disassembly with per-bundle cycle
// shares, L2/L3 miss and prefetch-usefulness columns — the fastest answer
// to "which loads miss" — and -profile writes a gzipped pprof proto that
// `go tool pprof` reads directly. -adore attaches the optimizer first, so
// the listing shows the post-patch cost distribution.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro"
	"repro/cmd/internal/cli"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/workloads"
)

func main() {
	name := flag.String("bench", "gcc", "benchmark: "+strings.Join(workloads.Names(), " "))
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	timeline := flag.Bool("timeline", false, "run under ADORE with observability and print the event timeline")
	annotate := flag.Bool("annotate", false, "run the cycle-sampling profiler and print an annotated disassembly")
	profileOut := flag.String("profile", "", "run the cycle-sampling profiler and write a pprof proto (gzipped) to this file")
	sampleEvery := flag.Uint64("sample-every", 4093, "profiler sampling interval in simulated cycles (prefer a prime)")
	withADORE := flag.Bool("adore", false, "attach the ADORE optimizer during -annotate/-profile runs")
	flag.Parse()

	bench, err := adore.Benchmark(*name, *scale)
	fatal(err)
	build, err := adore.Compile(bench.Kernel, adore.CompileOptions())
	fatal(err)

	if *timeline {
		res, err := adore.RunContext(cli.Context(), build,
			adore.WithObserve(adore.WithADORE(adore.RunOptions())))
		fatal(err)
		fmt.Print(adore.Timeline(res.Obs))
		return
	}

	if *annotate || *profileOut != "" {
		fatal(simProfile(build, *withADORE, *sampleEvery, *annotate, *profileOut))
		return
	}

	rc := adore.RunOptions()
	rc.Core = adore.DefaultConfig()
	pr, err := harness.RunProfiledContext(cli.Context(), build, rc)
	fatal(err)

	type agg struct {
		loop   string
		id     int
		pfable bool
		events int
		lat    uint64
	}
	perLoop := map[int]*agg{}
	var total uint64
	outside := 0
	for _, ev := range pr.DearEvents {
		l, ok := build.Image.LoopAt(ev.PC)
		if !ok {
			outside++
			continue
		}
		a := perLoop[l.ID]
		if a == nil {
			a = &agg{loop: l.Name, id: l.ID, pfable: l.Prefetchable}
			perLoop[l.ID] = a
		}
		a.events++
		a.lat += uint64(ev.Latency)
		total += uint64(ev.Latency)
	}
	rows := make([]*agg, 0, len(perLoop))
	for _, a := range perLoop {
		rows = append(rows, a)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].lat > rows[j].lat })

	fmt.Printf("miss profile of %s: %d DEAR events, %d outside loops\n",
		bench.Name, len(pr.DearEvents), outside)
	fmt.Printf("%-4s %-16s %12s %14s %8s %12s\n", "id", "loop", "events", "total latency", "share", "prefetchable")
	for _, a := range rows {
		fmt.Printf("%-4d %-16s %12d %14d %7.1f%% %12v\n",
			a.id, a.loop, a.events, a.lat, 100*float64(a.lat)/float64(total), a.pfable)
	}
}

// simProfile runs build under the cycle-sampling profiler and renders the
// requested views.
func simProfile(build *adore.Build, withADORE bool, sampleEvery uint64, annotate bool, profileOut string) error {
	rc := adore.RunOptions()
	rc.ADORE = withADORE
	rc.Profile = sampleEvery
	res, err := harness.RunContext(cli.Context(), build, rc)
	if err != nil {
		return err
	}
	if annotate {
		if err := obs.WriteAnnotate(os.Stdout, res.Profile, build.Image); err != nil {
			return err
		}
	}
	if profileOut != "" {
		f, err := os.Create(profileOut)
		if err != nil {
			return err
		}
		if err := obs.WritePprof(f, res.Profile); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s (inspect with: go tool pprof -top %s)\n", profileOut, profileOut)
	}
	return nil
}

func fatal(err error) { cli.Fatal(err) }
