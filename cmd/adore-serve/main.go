// adore-serve runs the simulator as a long-lived service: a sharded,
// cached, self-balancing run fleet behind an HTTP/JSON API.
//
// Usage:
//
//	adore-serve [-addr :8124] [-j 0] [-shards 8] [-shard-cap 128]
//	            [-slots 0] [-rebalance 2s] [-grace 30s]
//
// Endpoints:
//
//	POST /run      one simulation by value; see internal/serve.RunRequest
//	POST /sweep    one workload across policy columns, fork-grouped
//	GET  /shards   live shard table: cache counters, load, worker slots
//	GET  /status   per-sweep job progress
//	GET  /metrics  Prometheus text exposition (?format=json for JSON)
//	GET  /healthz  liveness
//
// Responses are cached by request fingerprint in a sharded bounded-LRU
// cache; a hit is byte-identical to the cold response, with the
// disposition in the X-Adore-Cache header. SIGTERM/SIGINT drain
// gracefully: in-flight requests get -grace to finish, and a clean drain
// exits 0 (so supervisors and CI can tell a graceful stop from a crash).
// See DESIGN.md §17.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"repro/cmd/internal/cli"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8124", "listen address")
	jobs := flag.Int("j", 0, "engine worker-pool width (0 = one per core)")
	shards := flag.Int("shards", 8, "response-cache shard count (rounded up to a power of two)")
	shardCap := flag.Int("shard-cap", 128, "max completed responses per shard (LRU eviction past it)")
	slots := flag.Int("slots", 0, "worker-slot budget split across shards (0 = engine width)")
	rebalance := flag.Duration("rebalance", 2*time.Second, "shard-manager rebalance interval")
	grace := flag.Duration("grace", 30*time.Second, "shutdown grace for in-flight requests")
	resultCap := flag.Int("result-cap", 1024, "engine result-cache bound (entries)")
	flag.Parse()

	ln, err := net.Listen("tcp", *addr)
	cli.Fatal(err)

	srv := serve.New(serve.Config{
		Parallelism:     *jobs,
		Shards:          *shards,
		ShardCap:        *shardCap,
		TotalSlots:      *slots,
		Rebalance:       *rebalance,
		EngineResultCap: *resultCap,
	})

	ctx := cli.Context()
	mgrCtx, stopMgr := context.WithCancel(context.Background())
	go srv.Run(mgrCtx)

	fmt.Fprintf(os.Stderr, "adore-serve: listening on http://%s (%d shards, cap %d, %v shard budget)\n",
		ln.Addr(), srv.Cache().Shards(), *shardCap, srv.Manager().Allocations())

	// A graceful SIGTERM drain is a SUCCESS for a server (unlike an
	// interrupted batch sweep), so a clean ListenAndServe return exits 0
	// rather than taking cli.Fatal's canceled-means-130 path.
	err = serve.ListenAndServe(ctx, serve.Hardened(srv.Handler()), ln, *grace)
	stopMgr()
	if err != nil {
		cli.Fatal(fmt.Errorf("adore-serve: %w", err))
	}
	hits, misses, evictions := srv.Cache().Stats()
	fmt.Fprintf(os.Stderr, "adore-serve: drained; cache %d hits / %d misses / %d evictions\n",
		hits, misses, evictions)
}
