// adore-vet runs the repository's custom vet checks (internal/lint):
// zero-allocation discipline in the simulator's run-loop files and
// completeness of the obs event-name table. It is built on the standard
// library's go/ast only — the module has no external dependencies, so
// the usual `go vet -vettool` route is unavailable — and CI runs it as a
// direct step.
//
// Usage:
//
//	adore-vet [-root dir]
//
// Exit status is non-zero when any finding is reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/cmd/internal/cli"
	"repro/internal/lint"
)

func main() {
	root := flag.String("root", "", "module root (default: nearest parent with go.mod)")
	flag.Parse()

	dir := *root
	if dir == "" {
		var err error
		dir, err = findRoot()
		cli.Fatal(err)
	}

	findings := 0
	emit := func(fs []lint.Finding, err error) {
		cli.Fatal(err)
		for _, f := range fs {
			fmt.Println(f)
			findings++
		}
	}
	for _, rel := range lint.HotPathFiles {
		emit(lint.HotPath(filepath.Join(dir, rel)))
	}
	emit(lint.ObsNames(filepath.Join(dir, "internal", "obs", "obs.go")))

	if findings > 0 {
		fmt.Printf("\n%d vet finding(s)\n", findings)
		os.Exit(1)
	}
	fmt.Printf("adore-vet: %d hot-path file(s) and the obs name table are clean\n", len(lint.HotPathFiles))
}

// findRoot walks up from the working directory to the nearest go.mod.
func findRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s; pass -root", dir)
		}
		dir = parent
	}
}
