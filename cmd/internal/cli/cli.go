// Package cli is the shared wiring of the adore-* command-line tools: a
// signal-aware root context so ^C cancels in-flight simulations cleanly,
// and uniform fatal-error handling.
package cli

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// Context returns a context cancelled by SIGINT or SIGTERM. The signal
// handler is released after the first signal, so a second ^C kills the
// process the default way if a tool is slow to wind down.
func Context() context.Context {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ctx.Done()
		stop()
	}()
	return ctx
}

// Fatal prints err and exits non-zero; a nil err is a no-op. Cancellation
// exits with the shell's SIGINT convention (130) so scripts can tell an
// interrupted sweep from a failed one.
func Fatal(err error) {
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "error:", err)
	if errors.Is(err, context.Canceled) {
		os.Exit(130)
	}
	os.Exit(1)
}
