package adore

import (
	"math"
	"strings"
	"testing"
)

func TestFacadeBenchmarkRegistry(t *testing.T) {
	all := Benchmarks(0.05)
	if len(all) != 17 {
		t.Fatalf("benchmarks = %d", len(all))
	}
	if _, err := Benchmark("mcf", 0.05); err != nil {
		t.Fatal(err)
	}
	if _, err := Benchmark("bogus", 0.05); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestFacadeCompileRun(t *testing.T) {
	bench, err := Benchmark("gzip", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	build, err := Compile(bench.Kernel, CompileOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(build, RunOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.CPU.Retired == 0 {
		t.Fatal("nothing executed")
	}
}

func TestFacadeKernelDSL(t *testing.T) {
	k := &Kernel{
		Name: "dsl",
		Arrays: []Array{
			{Name: "a", Elem: 8, N: 1 << 10, Init: InitLinear(2, 1)},
			{Name: "idx", Elem: 4, N: 1 << 10, Init: InitLinearMod(7, 0, 1<<10)},
			{Name: "chain", N: 64, Init: InitChain(64, 8, 0, 5)},
		},
		Phases: []Phase{{
			Name:   "main",
			Repeat: 2,
			Loops: []*Loop{{
				Name:      "mix",
				OuterTrip: 1,
				InnerTrip: 64,
				Body: []Stmt{
					Load("i", "idx", 4, 4),
					Gather("v", "a", "i", 8, 8),
					LoadPtr("p", "p", 8),
					{Kind: SAdd, Dst: "s", A: "s", B: "v"},
					Store("s", "a", 0, 8),
					LoadF("f", "a", 8),
					{Kind: SFMA, Dst: "g", A: "f", B: "g", C: "g"},
					StoreF("g", "a", 0),
				},
				Inits: []Init{
					InitPtr("p", "chain", 0),
					InitImm("s", 0),
				},
				FloatTemps: []string{"g"},
			}},
		}},
	}
	build, err := Compile(k, CompileOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(build, RunOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.CPU.Loads == 0 || res.CPU.Stores == 0 {
		t.Fatalf("DSL kernel did nothing: %+v", res.CPU)
	}
}

func TestFacadeWithADORE(t *testing.T) {
	rc := WithADORE(RunOptions())
	if !rc.ADORE || rc.Core.W == 0 {
		t.Fatalf("WithADORE misconfigured: %+v", rc.Core)
	}
}

func TestFacadeSpeedup(t *testing.T) {
	if got := Speedup(200, 100); got != 1.0 {
		t.Fatalf("Speedup(200,100) = %v", got)
	}
	if got := Speedup(100, 200); got != -0.5 {
		t.Fatalf("Speedup(100,200) = %v", got)
	}
	// Zero test cycles is a broken run and reads as NaN, not 0%.
	if got := Speedup(100, 0); !math.IsNaN(got) {
		t.Fatalf("Speedup(100,0) = %v, want NaN", got)
	}
}

func TestExperimentRendersMentionPaperArtifacts(t *testing.T) {
	cfg := Experiments()
	cfg.Scale = 0.05
	f, err := Fig7(cfg, O2)
	if err != nil {
		t.Fatal(err)
	}
	out := f.Render()
	for _, want := range []string{"Figure 7", "mcf", "swim", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	if len(f.Rows) != 17 {
		t.Fatalf("rows = %d", len(f.Rows))
	}
}
