package adore_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/memsys"
	"repro/internal/pmu"

	adore "repro"
)

// scaledConfig returns ADORE parameters sized for the tiny test workloads,
// mirroring the scaled configuration the harness tests use.
func scaledConfig() adore.Config {
	cfg := core.DefaultConfig()
	cfg.Sampling = pmu.Config{SampleInterval: 2000, SSBSize: 64, DearLatencyMin: 8, HandlerCyclesPerSample: 30}
	cfg.W = 8
	cfg.PollInterval = 20_000
	cfg.StableWindows = 3
	return cfg
}

// TestRunOptionTransforms pins the facade's option helpers: what each one
// sets, what it must leave alone, and how they compose.
func TestRunOptionTransforms(t *testing.T) {
	custom := scaledConfig()
	tests := []struct {
		name  string
		build func() adore.RunConfig
		check func(t *testing.T, rc adore.RunConfig)
	}{
		{
			name:  "defaults",
			build: adore.RunOptions,
			check: func(t *testing.T, rc adore.RunConfig) {
				if rc.ADORE || rc.Observe || rc.SampleOnly {
					t.Errorf("defaults enable features: ADORE=%v Observe=%v SampleOnly=%v",
						rc.ADORE, rc.Observe, rc.SampleOnly)
				}
				if rc.MaxInsts == 0 {
					t.Error("no default instruction safety stop")
				}
				if rc.Hierarchy != memsys.DefaultConfig() {
					t.Error("default hierarchy is not memsys.DefaultConfig")
				}
			},
		},
		{
			name:  "with-adore",
			build: func() adore.RunConfig { return adore.WithADORE(adore.RunOptions()) },
			check: func(t *testing.T, rc adore.RunConfig) {
				if !rc.ADORE {
					t.Error("ADORE not set")
				}
				if rc.Core.W == 0 {
					t.Error("no default optimizer config filled in")
				}
				if !rc.Core.Verify {
					t.Error("patch-time verification must default on")
				}
				if rc.Observe {
					t.Error("WithADORE flipped Observe")
				}
			},
		},
		{
			name: "with-adore-preserves-custom-core",
			build: func() adore.RunConfig {
				rc := adore.RunOptions()
				rc.Core = custom
				return adore.WithADORE(rc)
			},
			check: func(t *testing.T, rc adore.RunConfig) {
				if rc.Core.W != custom.W || rc.Core.PollInterval != custom.PollInterval {
					t.Errorf("WithADORE replaced a caller-set Core: W=%d PollInterval=%d",
						rc.Core.W, rc.Core.PollInterval)
				}
			},
		},
		{
			name:  "with-observe",
			build: func() adore.RunConfig { return adore.WithObserve(adore.RunOptions()) },
			check: func(t *testing.T, rc adore.RunConfig) {
				if !rc.Observe {
					t.Error("Observe not set")
				}
				if rc.ADORE {
					t.Error("WithObserve flipped ADORE")
				}
			},
		},
		{
			name: "composed",
			build: func() adore.RunConfig {
				return adore.WithObserve(adore.WithADORE(adore.RunOptions()))
			},
			check: func(t *testing.T, rc adore.RunConfig) {
				if !rc.ADORE || !rc.Observe {
					t.Errorf("composition lost a flag: ADORE=%v Observe=%v", rc.ADORE, rc.Observe)
				}
			},
		},
		{
			name:  "with-policy",
			build: func() adore.RunConfig { return adore.WithPolicy(adore.RunOptions(), "nextline") },
			check: func(t *testing.T, rc adore.RunConfig) {
				if !rc.ADORE {
					t.Error("WithPolicy did not imply ADORE")
				}
				if rc.Core.Policy != "nextline" || rc.Core.Selector {
					t.Errorf("policy plumbing: Policy=%q Selector=%v", rc.Core.Policy, rc.Core.Selector)
				}
				if rc.Core.PolicyKey() != "nextline" {
					t.Errorf("policy key = %q", rc.Core.PolicyKey())
				}
			},
		},
		{
			name:  "with-selector",
			build: func() adore.RunConfig { return adore.WithSelector(adore.RunOptions()) },
			check: func(t *testing.T, rc adore.RunConfig) {
				if !rc.ADORE || !rc.Core.Selector {
					t.Errorf("selector plumbing: ADORE=%v Selector=%v", rc.ADORE, rc.Core.Selector)
				}
				if rc.Core.PolicyKey() != "selector" {
					t.Errorf("policy key = %q", rc.Core.PolicyKey())
				}
			},
		},
		{
			name: "selector-overrides-policy",
			build: func() adore.RunConfig {
				return adore.WithSelector(adore.WithPolicy(adore.RunOptions(), "adaptive"))
			},
			check: func(t *testing.T, rc adore.RunConfig) {
				if rc.Core.Policy != "" || !rc.Core.Selector {
					t.Errorf("WithSelector did not override fixed policy: Policy=%q Selector=%v",
						rc.Core.Policy, rc.Core.Selector)
				}
			},
		},
		{
			name: "policy-overrides-selector",
			build: func() adore.RunConfig {
				return adore.WithPolicy(adore.WithSelector(adore.RunOptions()), "throttle")
			},
			check: func(t *testing.T, rc adore.RunConfig) {
				if rc.Core.Policy != "throttle" || rc.Core.Selector {
					t.Errorf("WithPolicy did not override selector: Policy=%q Selector=%v",
						rc.Core.Policy, rc.Core.Selector)
				}
			},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) { tc.check(t, tc.build()) })
	}
}

// TestFacadeConfigPlumbing drives the documented quick-start path at a
// small scale and checks each configuration's outputs land where the
// facade says they do: observability artifacts only when asked for, timing
// untouched by the observe and verify toggles, deterministic plain runs.
func TestFacadeConfigPlumbing(t *testing.T) {
	bench, err := adore.Benchmark("mcf", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	build, err := adore.Compile(bench.Kernel, adore.CompileOptions())
	if err != nil {
		t.Fatal(err)
	}
	if fs := adore.VerifyImage(build, adore.VerifyOptions{}); len(fs) != 0 {
		t.Fatalf("compiled image has verifier findings: %v", fs)
	}

	base, err := adore.Run(build, adore.RunOptions())
	if err != nil {
		t.Fatal(err)
	}
	if base.Obs != nil || base.CPIStack != nil {
		t.Error("plain run produced observability output")
	}
	again, err := adore.Run(build, adore.RunOptions())
	if err != nil {
		t.Fatal(err)
	}
	if base.CPU.Cycles != again.CPU.Cycles {
		t.Errorf("plain run not deterministic: %d vs %d cycles", base.CPU.Cycles, again.CPU.Cycles)
	}

	rc := adore.RunOptions()
	rc.Core = scaledConfig()
	opt, err := adore.Run(build, adore.WithADORE(rc))
	if err != nil {
		t.Fatal(err)
	}
	if opt.Core == nil {
		t.Fatal("ADORE run returned no optimizer stats")
	}

	obsRun, err := adore.Run(build, adore.WithObserve(adore.WithADORE(rc)))
	if err != nil {
		t.Fatal(err)
	}
	if obsRun.CPIStack == nil {
		t.Error("observed run has no CPI stack")
	}
	if obsRun.Obs == nil {
		t.Error("observed ADORE run has no event capture")
	}
	if obsRun.CPU.Cycles != opt.CPU.Cycles {
		t.Errorf("observability changed timing: %d vs %d cycles", obsRun.CPU.Cycles, opt.CPU.Cycles)
	}

	// The verify toggle is plumbed through: with patch-time verification
	// off the run still completes and patches identically.
	off := rc
	off.Core.Verify = false
	unchecked, err := adore.Run(build, adore.WithADORE(off))
	if err != nil {
		t.Fatal(err)
	}
	if unchecked.CPU.Cycles != opt.CPU.Cycles {
		t.Errorf("verify toggle changed simulated timing: %d vs %d cycles",
			unchecked.CPU.Cycles, opt.CPU.Cycles)
	}

	// Policy plumbing: the explicit "paper" name is the same machine as the
	// default, every registered policy runs, and an unknown name errors.
	paper, err := adore.Run(build, adore.WithPolicy(rc, "paper"))
	if err != nil {
		t.Fatal(err)
	}
	if paper.CPU.Cycles != opt.CPU.Cycles {
		t.Errorf("explicit paper policy diverges from default: %d vs %d cycles",
			paper.CPU.Cycles, opt.CPU.Cycles)
	}
	for _, pol := range adore.Policies() {
		if _, err := adore.Run(build, adore.WithPolicy(rc, pol)); err != nil {
			t.Errorf("policy %q: %v", pol, err)
		}
	}
	if _, err := adore.Run(build, adore.WithSelector(rc)); err != nil {
		t.Errorf("selector run: %v", err)
	}
	if _, err := adore.Run(build, adore.WithPolicy(rc, "bogus")); err == nil {
		t.Error("unknown policy name did not error")
	}
}
