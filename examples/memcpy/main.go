// Memcpy reproduces the paper's §1.2 library-routine argument: "In some
// applications, the call to memcpy may involve a large amount of data
// movement and intensive cache misses. In some other applications, the
// calls to the memcpy routine have few cache misses. Once again, it is not
// easy to provide one memcpy routine that meets all the requirements."
//
// The same copy loop serves two programs: one copies 4 MiB buffers that
// stream from memory, the other copies 64 KiB buffers that live in cache.
// A single static binary cannot prefetch correctly for both; ADORE
// specializes the one binary per run — it prefetches aggressively in the
// streaming program and declines to optimize the cache-resident one (the
// phase is skipped for its low miss rate).
package main

import (
	"fmt"
	"log"

	"repro"
)

// memcpyKernel is the shared copy loop over n 8-byte words, called (via
// phase repetition) reps times.
func memcpyKernel(name string, n, reps int64) *adore.Kernel {
	return &adore.Kernel{
		Name: name,
		Arrays: []adore.Array{
			{Name: "src", Elem: 8, N: n, Init: adore.InitLinear(3, 1)},
			{Name: "dst", Elem: 8, N: n},
		},
		Phases: []adore.Phase{{
			Name:   "copy",
			Repeat: reps,
			Loops: []*adore.Loop{{
				Name:      "memcpy",
				OuterTrip: 1,
				InnerTrip: n,
				Body: []adore.Stmt{
					adore.Load("w", "src", 8, 8),
					adore.Store("w", "dst", 8, 8),
				},
			}},
		}},
	}
}

func measure(k *adore.Kernel) (plain, opt *adore.Result) {
	build, err := adore.Compile(k, adore.CompileOptions())
	if err != nil {
		log.Fatal(err)
	}
	plain, err = adore.Run(build, adore.RunOptions())
	if err != nil {
		log.Fatal(err)
	}
	opt, err = adore.Run(build, adore.WithADORE(adore.RunOptions()))
	if err != nil {
		log.Fatal(err)
	}
	return plain, opt
}

func main() {
	fmt.Println("one memcpy, two behaviours (§1.2 of the paper)")
	fmt.Println()

	big := memcpyKernel("memcpy-streaming", 1<<19, 24)    // 4 MiB per buffer
	small := memcpyKernel("memcpy-resident", 1<<13, 1536) // 64 KiB per buffer

	for _, c := range []struct {
		label string
		k     *adore.Kernel
	}{
		{"streaming (4 MiB buffers)", big},
		{"cache-resident (64 KiB buffers)", small},
	} {
		plain, opt := measure(c.k)
		s := opt.Core
		fmt.Printf("%-32s %12d -> %12d cycles (%+.1f%%)\n", c.label,
			plain.CPU.Cycles, opt.CPU.Cycles,
			100*adore.Speedup(plain.CPU.Cycles, opt.CPU.Cycles))
		fmt.Printf("%-32s prefetches inserted %d, low-miss phases skipped %d\n",
			"", s.TotalPrefetches(), s.SkipLowMiss)
	}

	fmt.Println()
	fmt.Println("the streaming program's copy loop is patched with prefetches;")
	fmt.Println("the resident program's identical loop is left alone — runtime")
	fmt.Println("information decides, where one static binary could not.")
}
