// Matmul reproduces the paper's §1.1 motivating example: a matrix multiply
// whose arrays are passed as (possibly aliased) parameters. The static
// compiler cannot prove the arrays independent, so — like ORC on the
// paper's Fig. 1 — it generates no prefetches even at O3. The runtime
// optimizer sees the actual miss addresses and prefetches anyway.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// C[i][j] += A[i][k] * B[k][j] with N = 256 (512 KiB per matrix).
	// The inner k-loop streams A rows (stride 8) and walks B columns
	// (stride N*8 = 2 KiB): B's column walk misses on every iteration.
	const n = 256
	kernel := &adore.Kernel{
		Name: "matmul",
		Arrays: []adore.Array{
			{Name: "A", Elem: 8, N: n * n, Float: true, Init: adore.InitLinear(1, 0)},
			{Name: "B", Elem: 8, N: n * n, Float: true, Init: adore.InitLinear(2, 0)},
			{Name: "C", Elem: 8, N: n * n, Float: true},
		},
		Phases: []adore.Phase{{
			Name:   "multiply",
			Repeat: 60,
			Loops: []*adore.Loop{{
				Name: "inner-k",
				// One (i,j) pair per outer iteration; the inner loop
				// runs over k. A advances by 8 per k, B by a full row.
				OuterTrip: n,
				InnerTrip: n,
				Ambiguous: true, // parameters may alias: no static prefetch
				Body: []adore.Stmt{
					{Kind: adore.SLoadFloat, Dst: "a",
						Ref: &adore.Ref{Kind: adore.RefAffine, Array: "A", InnerStride: 8, OuterStride: 8 * n}},
					{Kind: adore.SLoadFloat, Dst: "b",
						Ref: &adore.Ref{Kind: adore.RefAffine, Array: "B", InnerStride: 8 * n, OuterStride: 8}},
					{Kind: adore.SFMA, Dst: "c", A: "a", B: "b", C: "c"},
				},
				FloatTemps: []string{"c"},
			}},
		}},
	}

	for _, cfg := range []struct {
		label string
		level adore.BuildOptions
		dyn   bool
	}{
		{"O2", adore.CompileOptions(), false},
		{"O3 (static prefetching on)", o3(), false},
		{"O2 + runtime prefetching", adore.CompileOptions(), true},
	} {
		build, err := adore.Compile(kernel, cfg.level)
		if err != nil {
			log.Fatal(err)
		}
		rc := adore.RunOptions()
		if cfg.dyn {
			rc = adore.WithADORE(rc)
		}
		res, err := adore.Run(build, rc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %12d cycles  CPI %.2f  static prefetches in binary: %d\n",
			cfg.label, res.CPU.Cycles, res.CPU.CPI(), staticLfetch(build))
		if res.Core != nil {
			fmt.Printf("%-28s runtime prefetches: %d direct (B's 2 KiB column stride found at runtime)\n",
				"", res.Core.DirectPrefetches)
		}
	}
	fmt.Println("\nlike ORC on the paper's Fig. 1, O3 cannot prefetch the aliased")
	fmt.Println("parameter arrays; the runtime optimizer measures the actual stride.")
}

func o3() adore.BuildOptions {
	opts := adore.CompileOptions()
	opts.Level = adore.O3
	return opts
}

func staticLfetch(b *adore.Build) int { return b.PrefetchesInserted }
