// Quickstart: run the paper's DAXPY loop (§1.3) on the simulated Itanium-2
// machine, then run it again under the ADORE dynamic optimizer and watch
// runtime prefetching find and fix the delinquent loads.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// DAXPY: y[i] += a * x[i] over arrays far larger than the 1.5 MiB L3,
	// repeated enough times for ADORE's phase detector to see a stable
	// phase (a few million cycles).
	n := int64(1 << 17) // 1 MiB per array
	kernel := &adore.Kernel{
		Name: "daxpy",
		Arrays: []adore.Array{
			{Name: "x", Elem: 8, N: n, Float: true,
				Init: adore.InitLinear(1, 0)},
			{Name: "y", Elem: 8, N: n, Float: true,
				Init: adore.InitLinear(2, 0)},
		},
		Phases: []adore.Phase{{
			Name:   "daxpy",
			Repeat: 40,
			Loops: []*adore.Loop{{
				Name:      "daxpy",
				OuterTrip: 1,
				InnerTrip: n,
				Body: []adore.Stmt{
					adore.LoadF("xv", "x", 8),
					adore.LoadFAt("yv", "y", 8, 24),
					{Kind: adore.SFMA, Dst: "r", A: "xv", B: "a", C: "yv"},
					adore.StoreF("r", "y", 8),
				},
				FloatTemps: []string{"a"},
			}},
		}},
	}

	build, err := adore.Compile(kernel, adore.CompileOptions())
	if err != nil {
		log.Fatal(err)
	}

	base, err := adore.Run(build, adore.RunOptions())
	if err != nil {
		log.Fatal(err)
	}
	opt, err := adore.Run(build, adore.WithADORE(adore.RunOptions()))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("DAXPY on the simulated Itanium 2 (O2, no static prefetching):")
	fmt.Printf("  plain:      %12d cycles  (CPI %.2f)\n", base.CPU.Cycles, base.CPU.CPI())
	fmt.Printf("  with ADORE: %12d cycles  (CPI %.2f)\n", opt.CPU.Cycles, opt.CPU.CPI())
	fmt.Printf("  speedup:    %.1f%%\n\n", 100*adore.Speedup(base.CPU.Cycles, opt.CPU.Cycles))

	s := opt.Core
	fmt.Printf("what the dynamic optimizer did:\n")
	fmt.Printf("  profile windows observed:   %d\n", s.WindowsObserved)
	fmt.Printf("  stable phases detected:     %d\n", s.PhasesDetected)
	fmt.Printf("  traces selected/patched:    %d/%d\n", s.TracesSelected, s.TracesPatched)
	fmt.Printf("  prefetches inserted:        %d direct, %d indirect, %d pointer-chasing\n",
		s.DirectPrefetches, s.IndirectPrefetches, s.PointerPrefetches)
	fmt.Printf("  lfetch instructions run:    %d\n", opt.CPU.Prefetches)
}
