// Phases demonstrates the paper's §1.2 argument with a Gaussian-
// elimination-like workload whose cache behaviour changes as it runs: the
// sub-matrix being processed shrinks, so the program starts miss-heavy and
// ends cache-resident. A statically compiled binary cannot serve both ends;
// ADORE's coarse-grain phase detector tracks the change, optimizes the
// miss-heavy phase, and leaves the resident phase alone (it is skipped for
// its low miss rate).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Three stages of "elimination" over shrinking working sets:
	// 4 MiB (streams from memory), 1 MiB (L3-resident), 128 KiB
	// (L2-resident).
	mk := func(name string, elems, repeat int64) adore.Phase {
		return adore.Phase{
			Name:   name,
			Repeat: repeat,
			Loops: []*adore.Loop{{
				Name:      name,
				OuterTrip: 1,
				InnerTrip: elems,
				Body: []adore.Stmt{
					adore.LoadF("v", name, 8),
					{Kind: adore.SFMA, Dst: "s", A: "v", B: "k", C: "s"},
					adore.StoreF("s", name+"w", 8),
				},
				FloatTemps: []string{"s", "k"},
			}},
		}
	}
	kernel := &adore.Kernel{
		Name: "gauss",
		Arrays: []adore.Array{
			{Name: "big", Elem: 8, N: 1 << 19, Float: true, Init: adore.InitLinear(1, 0)},
			{Name: "bigw", Elem: 8, N: 1 << 19, Float: true},
			{Name: "mid", Elem: 8, N: 1 << 17, Float: true, Init: adore.InitLinear(2, 0)},
			{Name: "midw", Elem: 8, N: 1 << 17, Float: true},
			{Name: "small", Elem: 8, N: 1 << 14, Float: true, Init: adore.InitLinear(3, 0)},
			{Name: "smallw", Elem: 8, N: 1 << 14, Float: true},
		},
		Phases: []adore.Phase{
			mk("big", 1<<19, 24),
			mk("mid", 1<<17, 96),
			mk("small", 1<<14, 768),
		},
	}

	build, err := adore.Compile(kernel, adore.CompileOptions())
	if err != nil {
		log.Fatal(err)
	}
	rc := adore.WithADORE(adore.RunOptions())
	rc.RecordSeries = true
	res, err := adore.Run(build, rc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Gaussian-elimination-like run under ADORE (§1.2 of the paper):")
	fmt.Println("cycle        CPI    DEAR/1000-inst")
	step := len(res.Series)/28 + 1
	for i := 0; i < len(res.Series); i += step {
		p := res.Series[i]
		fmt.Printf("%-12d %-6.2f %-6.2f %s\n", p.Cycle, p.CPI, p.DearPerK, stars(p.CPI))
	}
	s := res.Core
	fmt.Printf("\nphase detector: %d stable phases detected, %d phase changes\n",
		s.PhasesDetected, s.PhaseChanges)
	fmt.Printf("optimized %d phase(s); skipped %d low-miss phase(s) —\n",
		s.PhasesOptimized, s.SkipLowMiss)
	fmt.Println("the shrinking working set stops deserving prefetches, and ADORE notices.")
}

func stars(cpi float64) string {
	n := int(cpi * 6)
	if n > 40 {
		n = 40
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '*'
	}
	return string(out)
}
