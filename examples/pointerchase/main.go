// Pointerchase demonstrates induction-pointer prefetching (Fig. 5C/6C of
// the paper) on an mcf-like linked arc traversal: the runtime optimizer
// discovers that the address register advances through memory, measures
// the per-iteration delta at runtime, and prefetches the projected future
// node — something no static compiler can do for heap-allocated lists.
package main

import (
	"fmt"
	"log"

	"repro"
)

func run(shufflePct int) (base, opt *adore.Result, stats adore.OptStats) {
	nodes := int64(1 << 15) // 4 MiB of 128-byte arcs
	kernel := &adore.Kernel{
		Name: "arcs",
		Arrays: []adore.Array{
			{Name: "arcs", N: nodes, Init: adore.InitChain(128, 8, shufflePct, 99)},
		},
		Phases: []adore.Phase{{
			Name:   "walk",
			Repeat: 20,
			Loops: []*adore.Loop{{
				Name:      "arc-walk",
				OuterTrip: 1,
				InnerTrip: nodes,
				Body: []adore.Stmt{
					adore.LoadPtr("tail", "arc", 0), // tail = arc->tail
					adore.LoadPtr("arc", "arc", 8),  // arc  = arc->next
					{Kind: adore.SAdd, Dst: "sum", A: "sum", B: "tail"},
				},
				Inits: []adore.Init{
					adore.InitPtr("arc", "arcs", 0),
					adore.InitImm("sum", 0),
				},
			}},
		}},
	}

	build, err := adore.Compile(kernel, adore.CompileOptions())
	if err != nil {
		log.Fatal(err)
	}
	base, err = adore.Run(build, adore.RunOptions())
	if err != nil {
		log.Fatal(err)
	}
	opt, err = adore.Run(build, adore.WithADORE(adore.RunOptions()))
	if err != nil {
		log.Fatal(err)
	}
	return base, opt, *opt.Core
}

func main() {
	fmt.Println("induction-pointer prefetching vs. chain regularity")
	fmt.Println("(the paper: \"useful for linked lists with partially regular strides ...")
	fmt.Println(" less applicable if cache misses are evenly distributed along all paths\")")
	fmt.Println()
	for _, shuffle := range []int{0, 20, 50, 90} {
		base, opt, stats := run(shuffle)
		fmt.Printf("chain %3d%% shuffled: %11d -> %11d cycles, speedup %6.1f%%  (pointer prefetches: %d)\n",
			shuffle, base.CPU.Cycles, opt.CPU.Cycles,
			100*adore.Speedup(base.CPU.Cycles, opt.CPU.Cycles), stats.PointerPrefetches)
	}
}
