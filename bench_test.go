package adore

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/pmu"
)

// benchScale keeps each harness invocation around a second of host time;
// EXPERIMENTS.md numbers come from scale 1.0 via cmd/adore-bench.
const benchScale = 0.15

func benchExpConfig() harness.ExpConfig {
	cfg := harness.DefaultExpConfig()
	cfg.Scale = benchScale
	return cfg
}

func row(f *harness.Fig7Result, name string) *harness.SpeedupRow {
	for i := range f.Rows {
		if f.Rows[i].Name == name {
			return &f.Rows[i]
		}
	}
	return nil
}

// BenchmarkFig7a regenerates Fig. 7(a): runtime prefetching over O2
// binaries across the 17 benchmarks.
func BenchmarkFig7a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFig7(benchExpConfig(), compiler.O2)
		if err != nil {
			b.Fatal(err)
		}
		if r := row(res, "mcf"); r != nil {
			b.ReportMetric(r.Speedup*100, "mcf_speedup_%")
		}
		if r := row(res, "art"); r != nil {
			b.ReportMetric(r.Speedup*100, "art_speedup_%")
		}
	}
}

// BenchmarkFig7b regenerates Fig. 7(b): runtime prefetching over O3.
func BenchmarkFig7b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFig7(benchExpConfig(), compiler.O3)
		if err != nil {
			b.Fatal(err)
		}
		if r := row(res, "mcf"); r != nil {
			b.ReportMetric(r.Speedup*100, "mcf_speedup_%")
		}
	}
}

// benchFig7AtParallelism runs the Fig. 7(a) sweep on an engine of the given
// width. A fresh engine (and thus a cold build cache) per iteration keeps
// iterations comparable.
func benchFig7AtParallelism(b *testing.B, workers int) {
	b.Helper()
	if testing.Short() {
		b.Skip("long: full 17-benchmark sweep")
	}
	cfg := benchExpConfig()
	for i := 0; i < b.N; i++ {
		cfg.Engine = harness.NewEngine(harness.EngineConfig{Parallelism: workers})
		res, err := harness.RunFig7(cfg, compiler.O2)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkFig7Serial pins the engine to one worker — the baseline for
// BenchmarkFig7Parallel.
func BenchmarkFig7Serial(b *testing.B) { benchFig7AtParallelism(b, 1) }

// BenchmarkFig7Parallel runs the same sweep with one worker per core; the
// ratio against BenchmarkFig7Serial tracks the engine's wall-clock win in
// the perf trajectory.
func BenchmarkFig7Parallel(b *testing.B) { benchFig7AtParallelism(b, 0) }

// BenchmarkTable1 regenerates the profile-guided static prefetching table.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunTable1(benchExpConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FilteredFraction()*100, "loops_filtered_%")
	}
}

// BenchmarkTable2 regenerates the prefetch pattern analysis.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunTable2(benchExpConfig())
		if err != nil {
			b.Fatal(err)
		}
		var dir, ind, ptr int
		for _, r := range res.Rows {
			dir += r.Direct
			ind += r.Indirect
			ptr += r.Pointer
		}
		b.ReportMetric(float64(dir), "direct")
		b.ReportMetric(float64(ind), "indirect")
		b.ReportMetric(float64(ptr), "pointer")
	}
}

// BenchmarkFig8 regenerates the 179.art CPI/DEAR time series.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunSeries(benchExpConfig(), "art")
		if err != nil {
			b.Fatal(err)
		}
		// The paper's claim: CPI roughly halves in the steady state.
		before := harness.MeanCPI(res.Without, 0.3, 0.6)
		after := harness.MeanCPI(res.With, 0.3, 0.6)
		if after > 0 {
			b.ReportMetric(before/after, "cpi_ratio")
		}
	}
}

// BenchmarkFig9 regenerates the 181.mcf series.
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunSeries(benchExpConfig(), "mcf")
		if err != nil {
			b.Fatal(err)
		}
		before := harness.MeanCPI(res.Without, 0.2, 0.5)
		after := harness.MeanCPI(res.With, 0.2, 0.5)
		if after > 0 {
			b.ReportMetric(before/after, "cpi_ratio")
		}
	}
}

// BenchmarkFig10 regenerates the register/SWP impact comparison.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFig10(benchExpConfig())
		if err != nil {
			b.Fatal(err)
		}
		over3 := 0
		for _, r := range res.Rows {
			if r.Impact > 0.03 {
				over3++
			}
		}
		b.ReportMetric(float64(over3), "programs_over_3%")
	}
}

// BenchmarkFig11 regenerates the monitoring overhead measurement.
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFig11(benchExpConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MaxOverhead()*100, "max_overhead_%")
	}
}

// ---- ablation benches (DESIGN.md §5) ----

// ablationRun measures the ADORE speedup on the mcf workload under a
// modified optimizer configuration.
func ablationRun(b *testing.B, name string, mutate func(*core.Config)) {
	b.Helper()
	bench, err := Benchmark(name, 0.25)
	if err != nil {
		b.Fatal(err)
	}
	build, err := Compile(bench.Kernel, CompileOptions())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		rc := RunOptions()
		base, err := Run(build, rc)
		if err != nil {
			b.Fatal(err)
		}
		rc = WithADORE(RunOptions())
		mutate(&rc.Core)
		opt, err := Run(build, rc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(Speedup(base.CPU.Cycles, opt.CPU.Cycles)*100, "speedup_%")
	}
}

// BenchmarkAblationBaseline is the reference point for the ablations.
func BenchmarkAblationBaseline(b *testing.B) {
	ablationRun(b, "art", func(*core.Config) {})
}

// BenchmarkAblationDistance caps the prefetch distance at one iteration,
// ablating the latency/body-cycles distance formula.
func BenchmarkAblationDistance(b *testing.B) {
	ablationRun(b, "art", func(c *core.Config) { c.MaxPrefetchIters = 1 })
}

// BenchmarkAblationTopK1 prefetches only the single hottest load per trace
// instead of the paper's top three.
func BenchmarkAblationTopK1(b *testing.B) {
	ablationRun(b, "art", func(c *core.Config) { c.MaxDelinquentLoads = 1 })
}

// BenchmarkAblationTopK8 raises the cap to eight (register budget still
// limits what fits).
func BenchmarkAblationTopK8(b *testing.B) {
	ablationRun(b, "art", func(c *core.Config) { c.MaxDelinquentLoads = 8 })
}

// BenchmarkAblationNoAlign disables L1D-line alignment of small integer
// strides.
func BenchmarkAblationNoAlign(b *testing.B) {
	ablationRun(b, "bzip2", func(c *core.Config) { c.NoLineAlign = true })
}

// BenchmarkAblationNaiveSchedule always inserts new bundles instead of
// filling empty slots.
func BenchmarkAblationNaiveSchedule(b *testing.B) {
	ablationRun(b, "art", func(c *core.Config) { c.NaiveSchedule = true })
}

// BenchmarkAblationPointerDistance sweeps the pointer-chasing
// iteration-ahead amplification on mcf.
func BenchmarkAblationPointerDistance(b *testing.B) {
	ablationRun(b, "mcf", func(c *core.Config) { c.IterAheadLog2 = 1 })
}

// BenchmarkAblationNoWindowDoubling disables the phase detector's window
// doubling.
func BenchmarkAblationNoWindowDoubling(b *testing.B) {
	ablationRun(b, "gcc", func(c *core.Config) { c.WindowDoubleAfter = 0 })
}

// BenchmarkSimulatorThroughput measures raw simulation speed (simulated
// instructions per host second) — the cost of the substrate itself.
func BenchmarkSimulatorThroughput(b *testing.B) {
	bench, err := Benchmark("swim", 0.1)
	if err != nil {
		b.Fatal(err)
	}
	build, err := Compile(bench.Kernel, CompileOptions())
	if err != nil {
		b.Fatal(err)
	}
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := Run(build, RunOptions())
		if err != nil {
			b.Fatal(err)
		}
		insts += r.CPU.Retired
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(insts)/sec/1e6, "Minst/s")
	}
}

// BenchmarkPMUSamplingCost measures the sampling machinery in isolation.
func BenchmarkPMUSamplingCost(b *testing.B) {
	p := pmu.New(pmu.DefaultConfig())
	p.SetHandler(func([]pmu.Sample) {})
	p.Start(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.OnBranch(uint64(i), uint64(i+64), i%2 == 0)
		p.OnLoadMiss(uint64(i), uint64(i*64), 20)
		p.TakeSample(uint64(i), uint64(i*2000))
	}
}

// ---- §6 future-work extension benches ----

// BenchmarkExtensionSWPLoops measures runtime prefetching on a
// software-pipelined binary with the SWP-loop extension enabled.
func BenchmarkExtensionSWPLoops(b *testing.B) {
	bench, err := Benchmark("swim", 0.25)
	if err != nil {
		b.Fatal(err)
	}
	opts := CompileOptions()
	opts.SWP = true
	build, err := Compile(bench.Kernel, opts)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		base, err := Run(build, RunOptions())
		if err != nil {
			b.Fatal(err)
		}
		rc := WithADORE(RunOptions())
		rc.Core.OptimizeSWPLoops = true
		opt, err := Run(build, rc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(Speedup(base.CPU.Cycles, opt.CPU.Cycles)*100, "speedup_%")
	}
}

// BenchmarkExtensionStrideProfiling measures the instrumentation extension
// on a vpr-like kernel whose stride hides behind an fp-int conversion.
func BenchmarkExtensionStrideProfiling(b *testing.B) {
	bench, err := Benchmark("vpr", 1.0)
	if err != nil {
		b.Fatal(err)
	}
	build, err := Compile(bench.Kernel, CompileOptions())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		stock, err := Run(build, WithADORE(RunOptions()))
		if err != nil {
			b.Fatal(err)
		}
		rc := WithADORE(RunOptions())
		rc.Core.StrideProfiling = true
		ext, err := Run(build, rc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(Speedup(stock.CPU.Cycles, ext.CPU.Cycles)*100, "speedup_over_stock_%")
		b.ReportMetric(float64(ext.Core.StrideFound), "strides_found")
	}
}

// BenchmarkExtensionPhaseTable measures the signature-table detector on a
// rapidly phase-changing binary.
func BenchmarkExtensionPhaseTable(b *testing.B) {
	bench, err := Benchmark("gcc", 0.4)
	if err != nil {
		b.Fatal(err)
	}
	build, err := Compile(bench.Kernel, CompileOptions())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		stock, err := Run(build, WithADORE(RunOptions()))
		if err != nil {
			b.Fatal(err)
		}
		rc := WithADORE(RunOptions())
		rc.Core.PhaseTable = true
		ext, err := Run(build, rc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(ext.Core.TableHits), "table_hits")
		b.ReportMetric(Speedup(stock.CPU.Cycles, ext.CPU.Cycles)*100, "speedup_over_stock_%")
	}
}

// ---- hot-path perf trajectory (BENCH_hotpath.json) ----

// mipsScale keeps one simulated run well under a second of host time so
// b.N settles quickly; MIPS itself is scale-invariant.
const mipsScale = 0.25

// benchMIPS measures raw end-to-end simulation speed — simulated
// instructions retired per host second — for one workload at one opt
// level, without ADORE attached. These are the numbers BENCH_hotpath.json
// tracks across PRs.
func benchMIPS(b *testing.B, name string, level compiler.OptLevel) {
	bench, err := Benchmark(name, mipsScale)
	if err != nil {
		b.Fatal(err)
	}
	opts := CompileOptions()
	opts.Level = level
	build, err := Compile(bench.Kernel, opts)
	if err != nil {
		b.Fatal(err)
	}
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := Run(build, RunOptions())
		if err != nil {
			b.Fatal(err)
		}
		insts += r.CPU.Retired
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(insts)/sec/1e6, "MIPS")
	}
}

// BenchmarkMIPS is the headline simulator-throughput benchmark: mcf at
// both opt levels (the paper's flagship pointer-chasing workload) plus an
// FP stream (swim) and a cache-thrashing scan (art) for contrast.
func BenchmarkMIPS(b *testing.B) {
	b.Run("mcf/O2", func(b *testing.B) { benchMIPS(b, "mcf", O2) })
	b.Run("mcf/O3", func(b *testing.B) { benchMIPS(b, "mcf", O3) })
	b.Run("art/O2", func(b *testing.B) { benchMIPS(b, "art", O2) })
	b.Run("swim/O2", func(b *testing.B) { benchMIPS(b, "swim", O2) })
}
